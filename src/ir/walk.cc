#include "ir/walk.hh"

#include "support/logging.hh"

namespace memoria {

NodePtr
cloneNode(const Node &n)
{
    auto out = std::make_unique<Node>();
    out->kind = n.kind;
    out->var = n.var;
    out->lb = n.lb;
    out->ub = n.ub;
    out->step = n.step;
    out->stmt = n.stmt;
    out->body.reserve(n.body.size());
    for (const auto &kid : n.body)
        out->body.push_back(cloneNode(*kid));
    return out;
}

namespace {

void
collectStmtsImpl(Node *n, std::vector<Node *> &loops,
                 std::vector<StmtContext> &out)
{
    if (n->isStmt()) {
        out.push_back({n, loops});
        return;
    }
    loops.push_back(n);
    for (auto &kid : n->body)
        collectStmtsImpl(kid.get(), loops, out);
    loops.pop_back();
}

void
collectRefsValue(const Statement &stmt, const ValuePtr &v,
                 std::vector<RefOcc> &out)
{
    if (!v)
        return;
    if (v->op == ValOp::Load) {
        out.push_back({&stmt, &v->load, false});
        for (const auto &s : v->load.subs)
            if (!s.isAffine())
                collectRefsValue(stmt, s.opaque, out);
    }
    for (const auto &kid : v->kids)
        collectRefsValue(stmt, kid, out);
}

} // namespace

std::vector<StmtContext>
collectStmts(Node *root)
{
    std::vector<StmtContext> out;
    std::vector<Node *> loops;
    collectStmtsImpl(root, loops, out);
    return out;
}

std::vector<StmtContext>
collectStmts(Program &prog)
{
    std::vector<StmtContext> out;
    std::vector<Node *> loops;
    for (auto &n : prog.body)
        collectStmtsImpl(n.get(), loops, out);
    return out;
}

std::vector<RefOcc>
collectRefs(const Statement &stmt)
{
    std::vector<RefOcc> out;
    out.push_back({&stmt, &stmt.write, true});
    for (const auto &s : stmt.write.subs)
        if (!s.isAffine())
            collectRefsValue(stmt, s.opaque, out);
    collectRefsValue(stmt, stmt.rhs, out);
    return out;
}

namespace {

void
collectLoopsImpl(Node *n, std::vector<Node *> &out)
{
    if (n->isLoop()) {
        out.push_back(n);
        for (auto &kid : n->body)
            collectLoopsImpl(kid.get(), out);
    }
}

} // namespace

std::vector<Node *>
collectLoops(Node *root)
{
    std::vector<Node *> out;
    collectLoopsImpl(root, out);
    return out;
}

std::vector<Node *>
topLevelLoops(Program &prog)
{
    std::vector<Node *> out;
    for (auto &n : prog.body)
        if (n->isLoop())
            out.push_back(n.get());
    return out;
}

std::vector<Node *>
perfectChain(Node *loop)
{
    MEMORIA_ASSERT(loop->isLoop(), "perfectChain requires a loop");
    std::vector<Node *> chain{loop};
    Node *cur = loop;
    while (cur->body.size() == 1 && cur->body[0]->isLoop()) {
        cur = cur->body[0].get();
        chain.push_back(cur);
    }
    return chain;
}

int
loopDepth(const Node &n)
{
    if (n.isStmt())
        return 0;
    int deepest = 0;
    for (const auto &kid : n.body)
        deepest = std::max(deepest, loopDepth(*kid));
    return 1 + deepest;
}

int
countStmts(const Node &n)
{
    if (n.isStmt())
        return 1;
    int total = 0;
    for (const auto &kid : n.body)
        total += countStmts(*kid);
    return total;
}

namespace {

ArrayRef
substituteVarRef(const ArrayRef &ref, VarId v, const AffineExpr &e)
{
    ArrayRef out;
    out.array = ref.array;
    out.subs.reserve(ref.subs.size());
    for (const auto &s : ref.subs) {
        if (s.isAffine())
            out.subs.emplace_back(s.affine.substitute(v, e));
        else
            out.subs.push_back(
                Subscript::makeOpaque(substituteVarValue(s.opaque, v, e)));
    }
    return out;
}

} // namespace

ValuePtr
substituteVarValue(const ValuePtr &val, VarId v, const AffineExpr &e)
{
    if (!val)
        return val;
    auto out = std::make_shared<Value>();
    out->op = val->op;
    out->constant = val->constant;
    out->index = val->index.substitute(v, e);
    if (val->op == ValOp::Load)
        out->load = substituteVarRef(val->load, v, e);
    out->kids.reserve(val->kids.size());
    for (const auto &kid : val->kids)
        out->kids.push_back(substituteVarValue(kid, v, e));
    return out;
}

void
substituteVarStmt(Statement &stmt, VarId v, const AffineExpr &e)
{
    stmt.write = substituteVarRef(stmt.write, v, e);
    stmt.rhs = substituteVarValue(stmt.rhs, v, e);
}

void
substituteVar(Node &n, VarId v, const AffineExpr &e)
{
    if (n.isStmt()) {
        substituteVarStmt(n.stmt, v, e);
        return;
    }
    n.lb = n.lb.substitute(v, e);
    n.ub = n.ub.substitute(v, e);
    for (auto &kid : n.body)
        substituteVar(*kid, v, e);
}

namespace {

bool
valueEqual(const ValuePtr &a, const ValuePtr &b);

bool
refEqual(const ArrayRef &a, const ArrayRef &b)
{
    if (a.array != b.array || a.subs.size() != b.subs.size())
        return false;
    for (size_t i = 0; i < a.subs.size(); ++i) {
        const auto &sa = a.subs[i];
        const auto &sb = b.subs[i];
        if (sa.isAffine() != sb.isAffine())
            return false;
        if (sa.isAffine()) {
            if (!(sa.affine == sb.affine))
                return false;
        } else if (!valueEqual(sa.opaque, sb.opaque)) {
            return false;
        }
    }
    return true;
}

bool
valueEqual(const ValuePtr &a, const ValuePtr &b)
{
    if (a == b)
        return true;
    if (!a || !b)
        return false;
    if (a->op != b->op || a->constant != b->constant ||
        !(a->index == b->index) || a->kids.size() != b->kids.size())
        return false;
    if (a->op == ValOp::Load && !refEqual(a->load, b->load))
        return false;
    for (size_t i = 0; i < a->kids.size(); ++i)
        if (!valueEqual(a->kids[i], b->kids[i]))
            return false;
    return true;
}

} // namespace

bool
refsEqual(const ArrayRef &a, const ArrayRef &b)
{
    return refEqual(a, b);
}

bool
structurallyEqual(const Node &a, const Node &b)
{
    if (a.kind != b.kind)
        return false;
    if (a.isStmt()) {
        return a.stmt.id == b.stmt.id &&
               refEqual(a.stmt.write, b.stmt.write) &&
               valueEqual(a.stmt.rhs, b.stmt.rhs);
    }
    if (a.var != b.var || !(a.lb == b.lb) || !(a.ub == b.ub) ||
        a.step != b.step || a.body.size() != b.body.size())
        return false;
    for (size_t i = 0; i < a.body.size(); ++i)
        if (!structurallyEqual(*a.body[i], *b.body[i]))
            return false;
    return true;
}

bool
structurallyEqual(const Program &a, const Program &b)
{
    if (a.body.size() != b.body.size())
        return false;
    for (size_t i = 0; i < a.body.size(); ++i)
        if (!structurallyEqual(*a.body[i], *b.body[i]))
            return false;
    return true;
}

namespace {

bool
valueUsesVar(const ValuePtr &v, VarId var)
{
    if (!v)
        return false;
    if (v->index.uses(var))
        return true;
    if (v->op == ValOp::Load) {
        for (const auto &s : v->load.subs) {
            if (s.isAffine() ? s.affine.uses(var)
                             : valueUsesVar(s.opaque, var))
                return true;
        }
    }
    for (const auto &kid : v->kids)
        if (valueUsesVar(kid, var))
            return true;
    return false;
}

} // namespace

int
maxStmtId(const Program &prog)
{
    int top = -1;
    std::function<void(const Node &)> walk = [&](const Node &n) {
        if (n.isStmt())
            top = std::max(top, n.stmt.id);
        for (const auto &kid : n.body)
            walk(*kid);
    };
    for (const auto &n : prog.body)
        walk(*n);
    return top;
}

void
renumberStmtsFrom(Node &n, int &next)
{
    if (n.isStmt()) {
        n.stmt.id = next++;
        return;
    }
    for (auto &kid : n.body)
        renumberStmtsFrom(*kid, next);
}

bool
pathFromRoot(const Node &root, const Node *target, std::vector<int> &path)
{
    if (&root == target)
        return true;
    for (size_t i = 0; i < root.body.size(); ++i) {
        path.push_back(static_cast<int>(i));
        if (pathFromRoot(*root.body[i], target, path))
            return true;
        path.pop_back();
    }
    return false;
}

Node *
resolvePath(Node &root, const std::vector<int> &path)
{
    Node *cur = &root;
    for (int i : path)
        cur = cur->body.at(i).get();
    return cur;
}

bool
usesVar(const Node &n, VarId v)
{
    if (n.isStmt()) {
        for (const auto &s : n.stmt.write.subs) {
            if (s.isAffine() ? s.affine.uses(v) : valueUsesVar(s.opaque, v))
                return true;
        }
        return valueUsesVar(n.stmt.rhs, v);
    }
    if (n.lb.uses(v) || n.ub.uses(v))
        return true;
    for (const auto &kid : n.body)
        if (usesVar(*kid, v))
            return true;
    return false;
}

} // namespace memoria
