/**
 * @file
 * Fortran-flavoured pretty printer for the loop-nest IR.
 */

#ifndef MEMORIA_IR_PRINTER_HH
#define MEMORIA_IR_PRINTER_HH

#include <string>

#include "ir/program.hh"

namespace memoria {

/** Render a whole program, declarations included. */
std::string printProgram(const Program &prog);

/** Render one node subtree at the given indentation level. */
std::string printNode(const Program &prog, const Node &n, int indent = 0);

/** Render an array reference like "A(I,K+1)". */
std::string printRef(const Program &prog, const ArrayRef &ref);

/** Render a value tree. */
std::string printValue(const Program &prog, const ValuePtr &v);

} // namespace memoria

#endif // MEMORIA_IR_PRINTER_HH
