#include "ir/builder.hh"

#include "support/logging.hh"

namespace memoria {

Ref
Arr::operator()(const Ix &i) const
{
    ArrayRef r;
    r.array = id;
    r.subs.emplace_back(i.e);
    return {r};
}

Ref
Arr::operator()(const Ix &i, const Ix &j) const
{
    ArrayRef r;
    r.array = id;
    r.subs.emplace_back(i.e);
    r.subs.emplace_back(j.e);
    return {r};
}

Ref
Arr::operator()(const Ix &i, const Ix &j, const Ix &k) const
{
    ArrayRef r;
    r.array = id;
    r.subs.emplace_back(i.e);
    r.subs.emplace_back(j.e);
    r.subs.emplace_back(k.e);
    return {r};
}

Ref
Arr::operator()(const Ix &i, const Ix &j, const Ix &k, const Ix &l) const
{
    ArrayRef r;
    r.array = id;
    r.subs.emplace_back(i.e);
    r.subs.emplace_back(j.e);
    r.subs.emplace_back(k.e);
    r.subs.emplace_back(l.e);
    return {r};
}

Ref
Arr::at(std::vector<Subscript> subs) const
{
    ArrayRef r;
    r.array = id;
    r.subs = std::move(subs);
    return {r};
}

Subscript
opaqueSub(const Val &v)
{
    return Subscript::makeOpaque(v.p);
}

ProgramBuilder::ProgramBuilder(std::string name)
{
    prog_.name = std::move(name);
}

Var
ProgramBuilder::param(const std::string &name, int64_t value)
{
    VarInfo info;
    info.name = name;
    info.kind = VarKind::Param;
    info.paramValue = value;
    info.paramPoly = Poly::sym();
    prog_.vars.push_back(std::move(info));
    return {static_cast<VarId>(prog_.vars.size() - 1)};
}

Var
ProgramBuilder::paramFixed(const std::string &name, int64_t value)
{
    VarInfo info;
    info.name = name;
    info.kind = VarKind::Param;
    info.paramValue = value;
    info.paramPoly = Poly(static_cast<double>(value));
    prog_.vars.push_back(std::move(info));
    return {static_cast<VarId>(prog_.vars.size() - 1)};
}

Var
ProgramBuilder::loopVar(const std::string &name)
{
    VarInfo info;
    info.name = name;
    info.kind = VarKind::LoopVar;
    prog_.vars.push_back(std::move(info));
    return {static_cast<VarId>(prog_.vars.size() - 1)};
}

Arr
ProgramBuilder::array(const std::string &name, std::vector<Ix> extents,
                      int elemSize)
{
    ArrayDecl decl;
    decl.name = name;
    decl.elemSize = elemSize;
    for (const auto &ix : extents)
        decl.extents.push_back(ix.e);
    prog_.arrays.push_back(std::move(decl));
    return {static_cast<ArrayId>(prog_.arrays.size() - 1)};
}

Arr
ProgramBuilder::scalar(const std::string &name)
{
    ArrayDecl decl;
    decl.name = name;
    decl.isRegister = true;
    prog_.arrays.push_back(std::move(decl));
    return {static_cast<ArrayId>(prog_.arrays.size() - 1)};
}

NodePtr
ProgramBuilder::assign(const Ref &lhs, const Val &rhs)
{
    Statement s;
    s.id = nextStmt_++;
    s.write = lhs.r;
    s.rhs = rhs.p;
    return Node::makeStmt(std::move(s));
}

NodePtr
ProgramBuilder::loop(Var v, const Ix &lb, const Ix &ub,
                     std::vector<NodePtr> body, int64_t step)
{
    MEMORIA_ASSERT(v.id >= 0 &&
                       v.id < static_cast<VarId>(prog_.vars.size()),
                   "undeclared loop variable");
    MEMORIA_ASSERT(prog_.vars[v.id].kind == VarKind::LoopVar,
                   "loop() requires a loop variable, got a parameter");
    return Node::makeLoop(v.id, lb.e, ub.e, step, std::move(body));
}

void
ProgramBuilder::add(NodePtr n)
{
    prog_.body.push_back(std::move(n));
}

namespace {

void
renumberStmts(Node &n, int &next)
{
    if (n.isStmt()) {
        n.stmt.id = next++;
        return;
    }
    for (auto &kid : n.body)
        renumberStmts(*kid, next);
}

} // namespace

Program
ProgramBuilder::finish()
{
    MEMORIA_ASSERT(!finished_, "ProgramBuilder::finish called twice");
    finished_ = true;
    // Statement ids must follow document order (the dependence graph
    // uses them for direction of loop-independent dependences), but
    // the builder assigned them in argument-evaluation order, which
    // C++ leaves unspecified. Renumber in preorder.
    int next = 0;
    for (auto &n : prog_.body)
        renumberStmts(*n, next);
    return std::move(prog_);
}

} // namespace memoria
