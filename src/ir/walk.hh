/**
 * @file
 * Traversal, rewriting and structural utilities over the loop-nest IR.
 */

#ifndef MEMORIA_IR_WALK_HH
#define MEMORIA_IR_WALK_HH

#include <functional>
#include <vector>

#include "ir/program.hh"

namespace memoria {

/** A reference occurrence inside a statement. */
struct RefOcc
{
    const Statement *stmt = nullptr;
    const ArrayRef *ref = nullptr;
    bool isWrite = false;
};

/** A statement together with its enclosing loops, outermost first. */
struct StmtContext
{
    Node *node = nullptr;               ///< the Stmt node
    std::vector<Node *> loops;          ///< enclosing Loop nodes
};

/** Deep-copy a node tree. */
NodePtr cloneNode(const Node &n);

/** All statements under root (or the whole program), with loop context. */
std::vector<StmtContext> collectStmts(Node *root);
std::vector<StmtContext> collectStmts(Program &prog);

/** All array-reference occurrences in a statement (write + all loads,
 *  including loads buried in opaque subscripts). */
std::vector<RefOcc> collectRefs(const Statement &stmt);

/** All loop nodes under root, preorder. */
std::vector<Node *> collectLoops(Node *root);

/** Top-level loop nodes of the program, in order. */
std::vector<Node *> topLevelLoops(Program &prog);

/**
 * The maximal perfect-nest chain starting at loop: {loop, its only loop
 * child, ...} while each body consists of exactly one loop. The last
 * element's body holds the statements (and possibly further structure if
 * the nest is imperfect below that point).
 */
std::vector<Node *> perfectChain(Node *loop);

/** Maximum loop-nesting depth of the subtree (loop itself counts as 1). */
int loopDepth(const Node &n);

/** Number of Stmt nodes in the subtree. */
int countStmts(const Node &n);

/**
 * Substitute variable `v` by affine expression `e` everywhere in the
 * subtree: loop bounds, affine subscripts, Index leaves and opaque
 * subscript trees. Used by fusion (index renaming) and bound rewriting.
 */
void substituteVar(Node &n, VarId v, const AffineExpr &e);

/** Substitute within a value tree, returning the rewritten tree. */
ValuePtr substituteVarValue(const ValuePtr &val, VarId v,
                            const AffineExpr &e);

/** Substitute within a single statement. */
void substituteVarStmt(Statement &stmt, VarId v, const AffineExpr &e);

/** Structural equality of two array references. */
bool refsEqual(const ArrayRef &a, const ArrayRef &b);

/** Structural equality of two node trees (ids included). */
bool structurallyEqual(const Node &a, const Node &b);

/** Structural equality of two programs' bodies. */
bool structurallyEqual(const Program &a, const Program &b);

/** True when loop variable v is referenced anywhere in the subtree. */
bool usesVar(const Node &n, VarId v);

/** Largest statement id in the program (-1 when empty). */
int maxStmtId(const Program &prog);

/** Assign fresh statement ids to every Stmt node in the subtree. */
void renumberStmtsFrom(Node &n, int &next);

/**
 * Child-index path from `root` to `target` (empty when they are the
 * same node). Returns false when target is not in the subtree.
 */
bool pathFromRoot(const Node &root, const Node *target,
                  std::vector<int> &path);

/** Follow a child-index path. */
Node *resolvePath(Node &root, const std::vector<int> &path);

} // namespace memoria

#endif // MEMORIA_IR_WALK_HH
