#include "ir/program.hh"

#include "support/logging.hh"

namespace memoria {

Subscript
Subscript::makeOpaque(ValuePtr v)
{
    Subscript s;
    s.opaque = std::move(v);
    return s;
}

bool
ArrayRef::isAffine() const
{
    for (const auto &s : subs)
        if (!s.isAffine())
            return false;
    return true;
}

ValuePtr
Value::makeConst(double c)
{
    auto v = std::make_shared<Value>();
    v->op = ValOp::Const;
    v->constant = c;
    return v;
}

ValuePtr
Value::makeLoad(ArrayRef ref)
{
    auto v = std::make_shared<Value>();
    v->op = ValOp::Load;
    v->load = std::move(ref);
    return v;
}

ValuePtr
Value::makeIndex(AffineExpr e)
{
    auto v = std::make_shared<Value>();
    v->op = ValOp::Index;
    v->index = std::move(e);
    return v;
}

ValuePtr
Value::make(ValOp op, std::vector<ValuePtr> kids)
{
    auto v = std::make_shared<Value>();
    v->op = op;
    v->kids = std::move(kids);
    return v;
}

NodePtr
Node::makeLoop(VarId var, AffineExpr lb, AffineExpr ub, int64_t step,
               std::vector<NodePtr> body)
{
    MEMORIA_ASSERT(step != 0, "loop step must be non-zero");
    auto n = std::make_unique<Node>();
    n->kind = Kind::Loop;
    n->var = var;
    n->lb = std::move(lb);
    n->ub = std::move(ub);
    n->step = step;
    n->body = std::move(body);
    return n;
}

NodePtr
Node::makeStmt(Statement stmt)
{
    auto n = std::make_unique<Node>();
    n->kind = Kind::Stmt;
    n->stmt = std::move(stmt);
    return n;
}

namespace {

NodePtr
cloneNodeImpl(const Node &n)
{
    auto out = std::make_unique<Node>();
    out->kind = n.kind;
    out->var = n.var;
    out->lb = n.lb;
    out->ub = n.ub;
    out->step = n.step;
    out->stmt = n.stmt;
    out->body.reserve(n.body.size());
    for (const auto &kid : n.body)
        out->body.push_back(cloneNodeImpl(*kid));
    return out;
}

} // namespace

Program
Program::clone() const
{
    Program out;
    out.name = name;
    out.vars = vars;
    out.arrays = arrays;
    out.body.reserve(body.size());
    for (const auto &n : body)
        out.body.push_back(cloneNodeImpl(*n));
    return out;
}

} // namespace memoria
