/**
 * @file
 * The Memoria loop-nest intermediate representation.
 *
 * A Program is a forest of Nodes; a Node is either a DO loop (index
 * variable, affine lower/upper bounds, integer step, body) or an
 * assignment Statement writing one array element. Statements carry a full
 * evaluable right-hand-side expression tree so that transformed programs
 * can be *executed* and checked against the originals, not merely
 * analyzed.
 *
 * This is the representation level at which the paper's algorithms
 * (RefGroup / LoopCost / Permute / Fuse / Distribute / Compound) are
 * defined; a Fortran front end would lower to exactly this.
 */

#ifndef MEMORIA_IR_PROGRAM_HH
#define MEMORIA_IR_PROGRAM_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/expr.hh"
#include "support/poly.hh"

namespace memoria {

/** Index of an array in a Program's array table. */
using ArrayId = int32_t;

class Value;

/** Values are immutable and shared; rewrites rebuild affected spines. */
using ValuePtr = std::shared_ptr<const Value>;

struct ArrayRef;

/**
 * One subscript position of an array reference.
 *
 * Affine subscripts are analyzable by the dependence tests and the cost
 * model. An *opaque* subscript (index arrays as in Cgm, symbolic
 * linearized subscripts as in Mg3d) still evaluates at run time through
 * its Value tree, but analyses must treat it conservatively — exactly the
 * imprecision Section 5.3 of the paper describes.
 */
struct Subscript
{
    /** Valid when opaque is null. */
    AffineExpr affine;

    /** Non-null marks the subscript unanalyzable; evaluated at run time. */
    ValuePtr opaque;

    Subscript() = default;
    Subscript(AffineExpr e) : affine(std::move(e)) {}

    bool isAffine() const { return opaque == nullptr; }

    /** An opaque subscript computed by the given value tree. */
    static Subscript makeOpaque(ValuePtr v);
};

/** A subscripted array reference, e.g. A(I, K+1). Subscripts are 1-based
 *  Fortran style; arrays are column-major. */
struct ArrayRef
{
    ArrayId array = -1;
    std::vector<Subscript> subs;

    /** True when every subscript is affine. */
    bool isAffine() const;
};

/** Operations in statement right-hand sides. */
enum class ValOp
{
    Const,  ///< floating constant
    Load,   ///< read of an array element
    Index,  ///< current value of an affine expression over variables
    Add, Sub, Mul, Div, Neg, Sqrt, Min, Max,
    IMod,   ///< integer modulus of the (rounded) operands
};

/**
 * Immutable evaluable expression node.
 *
 * Loads embed their ArrayRef directly, so "the reads of a statement" is a
 * derived property (walk the tree), and renaming an index variable
 * rewrites bounds, subscripts and Index leaves uniformly.
 */
class Value
{
  public:
    ValOp op = ValOp::Const;
    double constant = 0.0;  ///< for Const
    ArrayRef load;          ///< for Load
    AffineExpr index;       ///< for Index
    std::vector<ValuePtr> kids;

    static ValuePtr makeConst(double c);
    static ValuePtr makeLoad(ArrayRef ref);
    static ValuePtr makeIndex(AffineExpr e);
    static ValuePtr make(ValOp op, std::vector<ValuePtr> kids);
};

/** One assignment statement: write(subscripts) = rhs. */
struct Statement
{
    /** Unique id within the program; stable across transformations. */
    int id = -1;

    ArrayRef write;
    ValuePtr rhs;
};

struct Node;
using NodePtr = std::unique_ptr<Node>;

/**
 * A loop or a statement.
 *
 * One tagged struct rather than a class hierarchy: the IR is small, and
 * uniform traversal/cloning matters more than per-kind vtables.
 */
struct Node
{
    enum class Kind { Loop, Stmt };

    Kind kind = Kind::Stmt;

    // --- Loop fields (kind == Loop) ---
    VarId var = kNoVar;
    AffineExpr lb;
    AffineExpr ub;
    int64_t step = 1;
    std::vector<NodePtr> body;

    // --- Statement field (kind == Stmt) ---
    Statement stmt;

    bool isLoop() const { return kind == Kind::Loop; }
    bool isStmt() const { return kind == Kind::Stmt; }

    static NodePtr makeLoop(VarId var, AffineExpr lb, AffineExpr ub,
                            int64_t step, std::vector<NodePtr> body);
    static NodePtr makeStmt(Statement stmt);
};

/** Kind of a program variable. */
enum class VarKind { LoopVar, Param };

/** A named variable: loop index or symbolic size parameter. */
struct VarInfo
{
    std::string name;
    VarKind kind = VarKind::LoopVar;

    /** Concrete value bound at execution time (Param only). */
    int64_t paramValue = 0;

    /**
     * Symbolic size of the parameter for the cost model: typically the
     * abstract symbol n (Poly::sym()), or a constant Poly for genuinely
     * small dimensions (e.g. the 5x5 leading dimensions in Applu).
     */
    Poly paramPoly;
};

/** A declared array: name, per-dimension extents, element size.
 *  Rank-0 arrays (no extents) act as scalars. */
struct ArrayDecl
{
    std::string name;
    std::vector<AffineExpr> extents;
    int elemSize = 8;

    /**
     * Register-allocated storage: accesses cost no memory traffic.
     * Scalar replacement (framework step 3, [CCK90]) promotes
     * loop-invariant array references into rank-0 register arrays.
     */
    bool isRegister = false;
};

/** A whole program: symbol tables plus a forest of top-level nodes. */
struct Program
{
    std::string name;
    std::vector<VarInfo> vars;
    std::vector<ArrayDecl> arrays;
    std::vector<NodePtr> body;

    const VarInfo &varInfo(VarId v) const { return vars.at(v); }
    const std::string &varName(VarId v) const { return vars.at(v).name; }
    const ArrayDecl &arrayDecl(ArrayId a) const { return arrays.at(a); }

    /** Deep copy (fresh Node trees; Values are shared, being immutable). */
    Program clone() const;
};

} // namespace memoria

#endif // MEMORIA_IR_PROGRAM_HH
