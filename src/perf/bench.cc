#include "perf/bench.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <sstream>

#include "check/equiv.hh"
#include "check/validate.hh"
#include "driver/memoria.hh"
#include "frontend/parser.hh"
#include "harness/batch.hh"
#include "interp/interp.hh"
#include "ir/printer.hh"
#include "suite/corpus.hh"
#include "suite/kernels.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "support/trace.hh"
#include "support/version.hh"

namespace memoria {
namespace perf {

namespace {

/** Work counters one benchmark fills; ordered for stable JSON. */
using Counters = std::map<std::string, uint64_t>;

/** One registered benchmark: a per-repetition body. The body runs the
 *  full workload every call; counters from the last repetition are
 *  reported (they are deterministic, so every repetition agrees). */
struct Bench
{
    std::string name;
    std::function<void(Counters &)> body;
};

double
elapsedMs(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** The programs the parse/validate benchmarks iterate: every kernel
 *  plus the 35-program corpus, as source text. */
std::vector<std::string>
benchSources()
{
    std::vector<std::string> sources;
    sources.push_back(printProgram(makeMatmul("IJK", 24)));
    sources.push_back(printProgram(makeMatmul("JKI", 24)));
    sources.push_back(printProgram(makeCholeskyKIJ(24)));
    sources.push_back(printProgram(makeAdiScalarized(24)));
    sources.push_back(printProgram(makeErlebacherDistributed(24)));
    sources.push_back(printProgram(makeGmtry(24)));
    sources.push_back(printProgram(makeSimpleHydro(24)));
    sources.push_back(printProgram(makeVpenta(24)));
    sources.push_back(printProgram(makeJacobiBadOrder(24)));
    for (const CorpusSpec &spec : corpusSpecs())
        sources.push_back(printProgram(buildCorpusProgram(spec, 12)));
    return sources;
}

std::vector<Program>
benchPrograms()
{
    std::vector<Program> progs;
    for (const std::string &src : benchSources()) {
        auto p = parseProgram(src);
        MEMORIA_ASSERT(p.has_value(), "bench source does not parse");
        progs.push_back(std::move(*p));
    }
    return progs;
}

/** The registered suite, in execution order. */
std::vector<Bench>
benchSuite()
{
    std::vector<Bench> suite;

    suite.push_back({"parse", [](Counters &c) {
        static const std::vector<std::string> sources = benchSources();
        uint64_t programs = 0;
        for (const std::string &src : sources) {
            auto p = parseProgram(src);
            MEMORIA_ASSERT(p.has_value(), "bench source does not parse");
            ++programs;
        }
        c["programs"] = programs;
    }});

    suite.push_back({"validate", [](Counters &c) {
        static const std::vector<Program> progs = benchPrograms();
        uint64_t diags = 0;
        for (const Program &p : progs)
            diags += validateProgram(p).size();
        c["programs"] = progs.size();
        c["diags"] = diags;
    }});

    suite.push_back({"compound", [](Counters &c) {
        static const std::vector<Program> progs = [] {
            std::vector<Program> v;
            v.push_back(makeMatmul("IJK", 24));
            v.push_back(makeMatmul("JKI", 24));
            v.push_back(makeCholeskyKIJ(24));
            v.push_back(makeAdiScalarized(24));
            v.push_back(makeErlebacherDistributed(24));
            v.push_back(makeJacobiBadOrder(24));
            return v;
        }();
        ModelParams params;
        PipelineOptions popts;
        popts.computeIdeal = false;
        uint64_t nests = 0, changed = 0;
        for (const Program &p : progs) {
            OptimizedProgram opt = optimizeProgram(p, params, popts);
            nests += static_cast<uint64_t>(opt.report.nests);
            changed += opt.anyChanged ? 1 : 0;
        }
        c["programs"] = progs.size();
        c["nests"] = nests;
        c["changed"] = changed;
    }});

    suite.push_back({"oracle", [](Counters &c) {
        static const std::vector<std::pair<Program, Program>> pairs =
            [] {
                ModelParams params;
                PipelineOptions popts;
                popts.computeIdeal = false;
                popts.compound.verify = false;
                std::vector<Program> inputs;
                inputs.push_back(makeMatmul("JKI", 16));
                inputs.push_back(makeJacobiBadOrder(16));
                std::vector<std::pair<Program, Program>> v;
                for (const Program &p : inputs) {
                    OptimizedProgram opt =
                        optimizeProgram(p, params, popts);
                    v.emplace_back(std::move(opt.original),
                                   std::move(opt.transformed));
                }
                return v;
            }();
        uint64_t compared = 0, equivalent = 0;
        for (const auto &[ref, cand] : pairs) {
            EquivResult r = checkEquivalence(ref, cand);
            compared += static_cast<uint64_t>(r.comparedRuns);
            equivalent += r.equivalent ? 1 : 0;
        }
        c["pairs"] = pairs.size();
        c["compared_runs"] = compared;
        c["equivalent"] = equivalent;
    }});

    suite.push_back({"simulate", [](Counters &c) {
        static const Program prog = makeMatmul("IKJ", 32);
        RunResult r = runWithCache(prog, CacheConfig::i860());
        c["accesses"] = r.cache.accesses;
        c["iterations"] = r.exec.loopIterations;
        c["interp_passes"] = 1;
    }});

    suite.push_back({"simulate_sweep", [](Counters &c) {
        static const Program prog = makeMatmul("IKJ", 32);
        static obs::Counter &cRuns = obs::counter("interp.runs");
        // The sweep's whole point: N configs, ONE interpreter pass.
        // Report the pass count straight from the obs registry so a
        // regression to per-config execution trips the CI gate.
        uint64_t runsBefore = cRuns.value();
        SweepResult r = runWithCaches(
            prog, {CacheConfig::rs6000(), CacheConfig::i860()});
        c["configs"] = r.cache.size();
        c["accesses"] = r.cache.front().accesses;
        c["iterations"] = r.exec.loopIterations;
        c["interp_passes"] = cRuns.value() - runsBefore;
    }});

    suite.push_back({"reuse_sweep", [](Counters &c) {
        static const Program prog = makeMatmul("IKJ", 32);
        SweepReuseOptions ropts;
        ropts.enabled = true;
        ropts.lineBytes = 32;
        MultiCacheSim sim({CacheConfig::i860()}, ropts);
        Interpreter interp(prog);
        Status st = interp.runBatched(&sim);
        MEMORIA_ASSERT(st.ok(), "bench kernel faulted");
        c["accesses"] = sim.stats(0).accesses;
        c["reuse_warm"] = sim.reuse()->warmAccesses();
        c["reuse_cold"] = sim.reuse()->coldAccesses();
    }});

    suite.push_back({"batch_corpus", [](Counters &c) {
        static obs::Counter &cRuns = obs::counter("interp.runs");
        harness::BatchOptions bopts;
        bopts.jobs = 2;
        bopts.cacheConfigs = {CacheConfig::rs6000(),
                              CacheConfig::i860()};
        uint64_t runsBefore = cRuns.value();
        harness::BatchReport rep =
            harness::runBatch(harness::corpusInputs(10), bopts);
        uint64_t accesses = 0, iterations = 0;
        for (const harness::ProgramOutcome &p : rep.programs) {
            accesses += p.accesses;
            iterations += p.iterations;
        }
        c["programs"] = rep.programs.size();
        c["ok"] =
            static_cast<uint64_t>(rep.countWithStatus(
                harness::BatchStatus::Ok));
        c["accesses"] = accesses;
        c["iterations"] = iterations;
        c["interp_passes"] = cRuns.value() - runsBefore;
    }});

    return suite;
}

std::string
jstr(const std::string &s)
{
    std::string out = "\"";
    for (char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += "\"";
    return out;
}

std::string
jnum(double v)
{
    if (!std::isfinite(v))
        return "0";
    std::ostringstream os;
    os << v;
    return os.str();
}

BenchTimings
summarize(std::vector<double> times)
{
    BenchTimings t;
    if (times.empty())
        return t;
    std::sort(times.begin(), times.end());
    size_t n = times.size();
    t.minMs = times.front();
    t.medianMs = n % 2 ? times[n / 2]
                       : 0.5 * (times[n / 2 - 1] + times[n / 2]);
    size_t p90 = static_cast<size_t>(std::ceil(0.9 * n));
    t.p90Ms = times[std::min(p90 ? p90 - 1 : 0, n - 1)];
    double sum = 0.0;
    for (double x : times)
        sum += x;
    t.meanMs = sum / n;
    return t;
}

} // namespace

std::vector<std::string>
benchNames()
{
    std::vector<std::string> names;
    for (const Bench &b : benchSuite())
        names.push_back(b.name);
    return names;
}

BenchReport
runBenchSuite(const BenchOptions &opts)
{
    const BuildInfo &info = buildInfo();
    BenchReport report;
    report.version = info.version;
    report.gitHash = info.gitHash;
    report.buildType = info.buildType;
    report.sanitizers = info.sanitizers;
    report.reps = std::max(opts.reps, 1);
    report.warmup = std::max(opts.warmup, 0);

    for (const Bench &b : benchSuite()) {
        if (!opts.filter.empty() &&
            b.name.find(opts.filter) == std::string::npos)
            continue;
        obs::TraceScope span("perf", "bench");
        span.arg("name", b.name);

        Counters counters;
        for (int i = 0; i < report.warmup; ++i)
            b.body(counters);

        std::vector<double> times;
        times.reserve(report.reps);
        for (int i = 0; i < report.reps; ++i) {
            counters.clear();
            auto t0 = std::chrono::steady_clock::now();
            b.body(counters);
            times.push_back(elapsedMs(t0));
        }

        BenchResult r;
        r.name = b.name;
        r.reps = report.reps;
        r.warmup = report.warmup;
        r.wall = summarize(std::move(times));
        for (const auto &[k, v] : counters)
            r.counters.emplace_back(k, v);
        auto acc = counters.find("accesses");
        if (acc != counters.end() && acc->second > 0)
            r.nsPerAccess = r.wall.medianMs * 1e6 /
                            static_cast<double>(acc->second);
        if (opts.publishGauges) {
            obs::gauge("perf." + b.name + ".median_ms")
                .set(r.wall.medianMs);
            obs::gauge("perf." + b.name + ".p90_ms").set(r.wall.p90Ms);
        }
        if (span.active())
            span.arg("median_ms", r.wall.medianMs);
        report.results.push_back(std::move(r));
    }
    return report;
}

std::string
BenchReport::toJson() const
{
    std::ostringstream os;
    os << "{\"schema\":" << jstr(schema)
       << ",\"version\":" << jstr(version)
       << ",\"git_hash\":" << jstr(gitHash)
       << ",\"build_type\":" << jstr(buildType)
       << ",\"sanitizers\":" << (sanitizers ? "true" : "false")
       << ",\"reps\":" << reps << ",\"warmup\":" << warmup
       << ",\"benchmarks\":[";
    bool first = true;
    for (const BenchResult &r : results) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":" << jstr(r.name) << ",\"reps\":" << r.reps
           << ",\"warmup\":" << r.warmup << ",\"wall_ms\":{\"median\":"
           << jnum(r.wall.medianMs) << ",\"p90\":" << jnum(r.wall.p90Ms)
           << ",\"min\":" << jnum(r.wall.minMs)
           << ",\"mean\":" << jnum(r.wall.meanMs) << "}"
           << ",\"counters\":{";
        bool cfirst = true;
        for (const auto &[k, v] : r.counters) {
            if (!cfirst)
                os << ",";
            cfirst = false;
            os << jstr(k) << ":" << v;
        }
        os << "}";
        // Additive derived block: absent when the benchmark has no
        // accesses counter, so older consumers keep parsing.
        if (r.nsPerAccess > 0.0)
            os << ",\"derived\":{\"ns_per_access\":"
               << jnum(r.nsPerAccess) << "}";
        os << "}";
    }
    os << "]}";
    return os.str();
}

std::string
BenchReport::toText() const
{
    TextTable t({"benchmark", "median ms", "p90 ms", "min ms",
                 "work counters"});
    for (const BenchResult &r : results) {
        std::string work;
        for (const auto &[k, v] : r.counters) {
            if (!work.empty())
                work += "  ";
            work += k + "=" + std::to_string(v);
        }
        if (r.nsPerAccess > 0.0)
            work += "  ns/access=" + TextTable::num(r.nsPerAccess, 2);
        t.addRow({r.name, TextTable::num(r.wall.medianMs, 3),
                  TextTable::num(r.wall.p90Ms, 3),
                  TextTable::num(r.wall.minMs, 3), work});
    }
    std::ostringstream os;
    os << t.str() << "bench: " << results.size() << " benchmarks, "
       << reps << " reps + " << warmup << " warmup each ("
       << buildType << (sanitizers ? ", sanitizers" : "") << ")\n";
    return os.str();
}

} // namespace perf
} // namespace memoria
