/**
 * @file
 * The `memoria bench` microbenchmark harness.
 *
 * Times the pipeline's hot paths — parse, validate, Compound,
 * equivalence oracle, single-config simulation, the multi-config
 * sweep, reuse-distance analysis, and an end-to-end batch over the
 * suite corpus — with warmup and repetition, reporting median / p90 /
 * min / mean wall time per benchmark.
 *
 * Every benchmark also reports **deterministic work counters**
 * (simulated accesses, interpreter iterations, nests optimized,
 * programs processed). Wall times vary with the host, so CI treats
 * them as warnings only; the counters are machine-independent, so the
 * perf gate (scripts/bench_compare.py) hard-fails when they grow —
 * catching "the sweep silently re-runs the interpreter per config"
 * class regressions without a quiet lab machine.
 *
 * `toJson()` renders the stable BENCH.json schema consumed by the CI
 * gate and committed as BENCH_baseline.json; see docs/PERFORMANCE.md.
 */

#ifndef MEMORIA_PERF_BENCH_HH
#define MEMORIA_PERF_BENCH_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace memoria {
namespace perf {

/** Knobs for one harness run. */
struct BenchOptions
{
    /** Timed repetitions per benchmark (median over these). */
    int reps = 5;

    /** Untimed warmup repetitions per benchmark. */
    int warmup = 1;

    /** Run only benchmarks whose name contains this substring. */
    std::string filter;

    /** Publish `perf.<name>.median_ms` gauges into the obs registry. */
    bool publishGauges = true;
};

/** Wall-time summary over the timed repetitions, in milliseconds. */
struct BenchTimings
{
    double medianMs = 0.0;
    double p90Ms = 0.0;
    double minMs = 0.0;
    double meanMs = 0.0;
};

/** One benchmark's outcome. */
struct BenchResult
{
    std::string name;
    int reps = 0;
    int warmup = 0;
    BenchTimings wall;

    /** Deterministic work counters, stable across hosts and runs. */
    std::vector<std::pair<std::string, uint64_t>> counters;

    /**
     * Derived throughput: median wall time over the `accesses` counter
     * (median_ms * 1e6 / accesses), in nanoseconds per simulated
     * access. Zero when the benchmark reports no accesses; like wall
     * times it is host-dependent, so gates treat it as advisory.
     */
    double nsPerAccess = 0.0;
};

/** The whole suite's outcome, plus build identity. */
struct BenchReport
{
    /** Schema tag checked by scripts/bench_compare.py. */
    std::string schema = "memoria-bench-v1";

    std::string version;
    std::string gitHash;
    std::string buildType;
    bool sanitizers = false;

    int reps = 0;
    int warmup = 0;
    std::vector<BenchResult> results;

    /** The stable BENCH.json rendering (docs/PERFORMANCE.md). */
    std::string toJson() const;

    /** Human-readable table. */
    std::string toText() const;
};

/** Names of the registered benchmarks, in execution order. */
std::vector<std::string> benchNames();

/** Run the suite (optionally filtered) and collect the report. */
BenchReport runBenchSuite(const BenchOptions &opts = {});

} // namespace perf
} // namespace memoria

#endif // MEMORIA_PERF_BENCH_HH
