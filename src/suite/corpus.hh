/**
 * @file
 * The synthetic benchmark corpus standing in for the paper's test suite.
 *
 * The paper evaluates 35 programs from the Perfect club, SPEC, the NAS
 * kernels and miscellaneous sources. Those Fortran sources and inputs
 * are not available here, so each program is replaced by a synthetic
 * analogue whose loop-nest population is generated to mirror the
 * characteristics Table 2 reports for it: the fraction of nests already
 * in memory order, the fraction that can be permuted into it, the
 * fraction blocked by dependences / complex bounds / unanalyzable
 * subscripts, and the fusion and distribution opportunity counts. This
 * preserves what the paper's whole-suite experiments measure — the
 * optimizer's behaviour over a population of nests — rather than the
 * numeric workloads themselves (see DESIGN.md, Substitutions).
 */

#ifndef MEMORIA_SUITE_CORPUS_HH
#define MEMORIA_SUITE_CORPUS_HH

#include <string>
#include <vector>

#include "ir/program.hh"

namespace memoria {

/** Targets for one synthetic program, derived from the paper's Table 2. */
struct CorpusSpec
{
    std::string name;
    std::string group;  ///< Perfect / SPEC / NAS / Misc

    int lines = 0;     ///< non-comment lines (paper, informational)
    int loops = 0;     ///< total loops (paper)
    int nests = 0;     ///< depth>=2 nests (paper)

    int pctOrig = 0;   ///< % nests originally in memory order
    int pctPerm = 0;   ///< % nests permutable into memory order
    // remainder fails

    int pctInnerOrig = 0;  ///< % nests with the inner loop already right
    int pctInnerPerm = 0;  ///< % nests whose inner loop gets fixed

    int fusionCandidates = 0;  ///< Table 2 column C
    int fusionApplied = 0;     ///< Table 2 column A
    int distributions = 0;     ///< Table 2 column D
    int distResulting = 0;     ///< Table 2 column R

    /** Failures stem from index arrays / linearized subscripts (Cgm,
     *  Mg3d style) rather than ordinary dependences. */
    bool opaqueStyle = false;
};

/** The 35 program specifications, in the paper's order. */
const std::vector<CorpusSpec> &corpusSpecs();

/** Build the synthetic program for one spec. `extent` is the loop
 *  extent used throughout (kept small so cache simulation stays fast). */
Program buildCorpusProgram(const CorpusSpec &spec, int64_t extent = 16);

/** Build the whole corpus. */
std::vector<Program> buildCorpus(int64_t extent = 16);

} // namespace memoria

#endif // MEMORIA_SUITE_CORPUS_HH
