#include "suite/kernels.hh"

#include "ir/builder.hh"
#include "support/logging.hh"

namespace memoria {

Program
makeMatmul(const std::string &order, int64_t n)
{
    MEMORIA_ASSERT(order.size() == 3, "matmul order must name I, J, K");
    ProgramBuilder b("matmul_" + order);
    Var N = b.param("N", n);
    Arr A = b.array("A", {N, N});
    Arr B = b.array("B", {N, N});
    Arr C = b.array("C", {N, N});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    Var k = b.loopVar("K");

    NodePtr cur = b.assign(C(i, j), C(i, j) + A(i, k) * B(k, j));
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        Var v = *it == 'I' ? i : (*it == 'J' ? j : k);
        MEMORIA_ASSERT(*it == 'I' || *it == 'J' || *it == 'K',
                       "bad matmul order letter");
        cur = b.loop(v, 1, N, std::move(cur));
    }
    b.add(std::move(cur));
    return b.finish();
}

Program
makeCholeskyKIJ(int64_t n)
{
    ProgramBuilder b("cholesky_KIJ");
    Var N = b.param("N", n);
    Arr A = b.array("A", {N, N});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    Var k = b.loopVar("K");

    b.add(b.loop(
        k, 1, N,
        b.assign(A(k, k), sqrtv(A(k, k))),
        b.loop(i, Ix(k) + 1, N,
               b.assign(A(i, k), Val(A(i, k)) / A(k, k)),
               b.loop(j, Ix(k) + 1, i,
                      b.assign(A(i, j),
                               A(i, j) - A(i, k) * A(j, k))))));
    return b.finish();
}

Program
makeCholeskyKJI(int64_t n)
{
    ProgramBuilder b("cholesky_KJI");
    Var N = b.param("N", n);
    Arr A = b.array("A", {N, N});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    Var k = b.loopVar("K");

    // Figure 7(b): S3 distributed into its own nest and the triangular
    // pair interchanged (region K+1 <= J <= I <= N traversed J-outer).
    b.add(b.loop(
        k, 1, N,
        b.assign(A(k, k), sqrtv(A(k, k))),
        b.loop(i, Ix(k) + 1, N,
               b.assign(A(i, k), Val(A(i, k)) / A(k, k))),
        b.loop(j, Ix(k) + 1, N,
               b.loop(i, Ix(j), N,
                      b.assign(A(i, j),
                               A(i, j) - A(i, k) * A(j, k))))));
    return b.finish();
}

Program
makeAdiScalarized(int64_t n)
{
    ProgramBuilder b("adi_scalarized");
    Var N = b.param("N", n);
    Arr X = b.array("X", {N, N});
    Arr A = b.array("A", {N, N});
    Arr B = b.array("B", {N, N});
    Var i = b.loopVar("I");
    Var k = b.loopVar("K");

    b.add(b.loop(
        i, 2, N,
        b.loop(k, 1, N,
               b.assign(X(i, k),
                        X(i, k) -
                            X(Ix(i) - 1, k) * A(i, k) /
                                B(Ix(i) - 1, k))),
        b.loop(k, 1, N,
               b.assign(B(i, k),
                        B(i, k) -
                            A(i, k) * A(i, k) / B(Ix(i) - 1, k)))));
    return b.finish();
}

Program
makeAdiFused(int64_t n)
{
    ProgramBuilder b("adi_fused");
    Var N = b.param("N", n);
    Arr X = b.array("X", {N, N});
    Arr A = b.array("A", {N, N});
    Arr B = b.array("B", {N, N});
    Var i = b.loopVar("I");
    Var k = b.loopVar("K");

    b.add(b.loop(
        k, 1, N,
        b.loop(i, 2, N,
               b.assign(X(i, k),
                        X(i, k) -
                            X(Ix(i) - 1, k) * A(i, k) /
                                B(Ix(i) - 1, k)),
               b.assign(B(i, k),
                        B(i, k) -
                            A(i, k) * A(i, k) / B(Ix(i) - 1, k)))));
    return b.finish();
}

namespace {

/** Shared construction for the Erlebacher variants. */
Program
makeErlebacher(bool hand, int64_t n)
{
    ProgramBuilder b(hand ? "erlebacher_hand" : "erlebacher_distributed");
    Var N = b.param("N", n);
    Arr F = b.array("F", {N, N, N});
    Arr DUX = b.array("DUX", {N, N, N});
    Arr DUY = b.array("DUY", {N, N, N});
    Arr DUZ = b.array("DUZ", {N, N, N});
    Arr TOT = b.array("TOT", {N, N, N});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    Var k = b.loopVar("K");

    auto nest3 = [&](NodePtr stmt) {
        return b.loop(k, 2, Ix(N) - 1,
                      b.loop(j, 2, Ix(N) - 1,
                             b.loop(i, 2, Ix(N) - 1, std::move(stmt))));
    };
    auto nest3pair = [&](NodePtr s1, NodePtr s2) {
        std::vector<NodePtr> body;
        body.push_back(std::move(s1));
        body.push_back(std::move(s2));
        return b.loop(k, 2, Ix(N) - 1,
                      b.loop(j, 2, Ix(N) - 1,
                             b.loop(i, 2, Ix(N) - 1, std::move(body))));
    };

    auto dux = b.assign(DUX(i, j, k),
                        (F(Ix(i) + 1, j, k) - F(Ix(i) - 1, j, k)) * 0.5);
    auto duy = b.assign(DUY(i, j, k),
                        (F(i, Ix(j) + 1, k) - F(i, Ix(j) - 1, k)) * 0.5);
    auto duz = b.assign(DUZ(i, j, k),
                        (F(i, j, Ix(k) + 1) - F(i, j, Ix(k) - 1)) * 0.5);
    auto tot = b.assign(TOT(i, j, k),
                        DUX(i, j, k) + DUY(i, j, k) + DUZ(i, j, k));
    auto scale = b.assign(TOT(i, j, k), TOT(i, j, k) * 0.25 + F(i, j, k));

    if (hand) {
        // Hand-coded style: derivatives in separate nests, the final
        // combination written as one two-statement nest.
        b.add(nest3(std::move(dux)));
        b.add(nest3(std::move(duy)));
        b.add(nest3(std::move(duz)));
        b.add(nest3pair(std::move(tot), std::move(scale)));
    } else {
        // Fully distributed (Fortran 90 scalarizer output style).
        b.add(nest3(std::move(dux)));
        b.add(nest3(std::move(duy)));
        b.add(nest3(std::move(duz)));
        b.add(nest3(std::move(tot)));
        b.add(nest3(std::move(scale)));
    }
    return b.finish();
}

} // namespace

Program
makeErlebacherDistributed(int64_t n)
{
    return makeErlebacher(false, n);
}

Program
makeErlebacherHand(int64_t n)
{
    return makeErlebacher(true, n);
}

Program
makeGmtry(int64_t n)
{
    ProgramBuilder b("gmtry");
    Var N = b.param("N", n);
    Arr A = b.array("A", {N, N});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    Var k = b.loopVar("K");

    // Gaussian elimination written "across rows": for each pivot K the
    // inner loops sweep row-wise (second subscript), so the innermost
    // loop has no spatial locality in column-major storage.
    b.add(b.loop(
        k, 1, Ix(N) - 1,
        b.loop(j, Ix(k) + 1, N,
               b.assign(A(k, j), Val(A(k, j)) / A(k, k))),
        b.loop(i, Ix(k) + 1, N,
               b.loop(j, Ix(k) + 1, N,
                      b.assign(A(i, j),
                               A(i, j) - A(i, k) * A(k, j))))));
    return b.finish();
}

Program
makeSimpleHydro(int64_t n)
{
    ProgramBuilder b("simple_hydro");
    Var N = b.param("N", n);
    Arr P = b.array("P", {N, N});
    Arr Q = b.array("Q", {N, N});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");

    // "Vectorizable" form: the recurrence runs along the *first*
    // subscript and is carried by the OUTER I loop, so the inner J
    // loop (a row sweep, stride N) vectorizes. Memory order wants I
    // innermost — unit stride — even though that places the recurrence
    // innermost; the interchange is legal and trades low-level
    // parallelism for locality, the Simple story of Section 5.7.
    b.add(b.loop(i, 2, N,
                 b.loop(j, 1, N,
                        b.assign(P(i, j),
                                 P(Ix(i) - 1, j) * 0.5 + Q(i, j)))));
    // A second loop pair in the same style.
    b.add(b.loop(i, 2, N,
                 b.loop(j, 1, N,
                        b.assign(Q(i, j),
                                 Q(Ix(i) - 1, j) + P(i, j)))));
    return b.finish();
}

Program
makeVpenta(int64_t n)
{
    ProgramBuilder b("vpenta");
    Var N = b.param("N", n);
    Arr X = b.array("X", {N, N});
    Arr Y = b.array("Y", {N, N});
    Arr Z = b.array("Z", {N, N});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");

    // Scalarized vector style: each statement in its own nest, inner
    // loop striding the second dimension (non-unit stride).
    b.add(b.loop(i, 1, N,
                 b.loop(j, 1, N,
                        b.assign(X(i, j), Y(i, j) + Z(i, j)))));
    b.add(b.loop(i, 1, N,
                 b.loop(j, 1, N,
                        b.assign(Z(i, j), X(i, j) * 2.0 - Y(i, j)))));
    return b.finish();
}

Program
makeJacobiBadOrder(int64_t n)
{
    ProgramBuilder b("jacobi_bad_order");
    Var N = b.param("N", n);
    Arr U = b.array("U", {N, N});
    Arr V = b.array("V", {N, N});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");

    b.add(b.loop(
        i, 2, Ix(N) - 1,
        b.loop(j, 2, Ix(N) - 1,
               b.assign(V(i, j),
                        (U(Ix(i) - 1, j) + U(Ix(i) + 1, j) +
                         U(i, Ix(j) - 1) + U(i, Ix(j) + 1)) *
                            0.25))));
    b.add(b.loop(i, 2, Ix(N) - 1,
                 b.loop(j, 2, Ix(N) - 1,
                        b.assign(U(i, j), V(i, j)))));
    return b.finish();
}

} // namespace memoria
