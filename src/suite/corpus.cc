#include "suite/corpus.hh"

#include <algorithm>

#include "ir/builder.hh"
#include "support/logging.hh"

namespace memoria {

const std::vector<CorpusSpec> &
corpusSpecs()
{
    // name, group, lines, loops, nests, %orig, %perm, C, A, D, R, opaque
    static const std::vector<CorpusSpec> specs = {
        {"adm", "Perfect", 6105, 219, 106, 52, 16, 53, 16, 0, 0, 1, 2, false},
        {"arc2d", "Perfect", 3965, 152, 75, 55, 28, 65, 34, 35, 12, 1, 2, false},
        {"bdna", "Perfect", 3980, 104, 56, 75, 18, 75, 18, 4, 2, 3, 6, false},
        {"dyfesm", "Perfect", 7608, 164, 80, 63, 15, 65, 19, 2, 1, 0, 0, false},
        {"flo52", "Perfect", 1986, 149, 76, 83, 17, 95, 5, 4, 1, 0, 0, false},
        {"mdg", "Perfect", 1238, 25, 12, 83, 8, 83, 8, 0, 0, 0, 0, false},
        {"mg3d", "Perfect", 2812, 88, 40, 95, 3, 98, 0, 0, 0, 1, 2, true},
        {"ocean", "Perfect", 4343, 115, 56, 82, 13, 84, 13, 2, 1, 3, 6, false},
        {"qcd", "Perfect", 2327, 94, 45, 53, 11, 58, 16, 0, 0, 0, 0, false},
        {"spec77", "Perfect", 3885, 255, 162, 64, 7, 66, 7, 0, 0, 0, 0, false},
        {"track", "Perfect", 3735, 57, 32, 50, 16, 56, 19, 2, 1, 1, 2, false},
        {"trfd", "Perfect", 485, 67, 29, 52, 0, 66, 0, 0, 0, 0, 0, false},
        {"dnasa7", "SPEC", 1105, 111, 50, 64, 14, 74, 16, 5, 2, 1, 2, false},
        {"doduc", "SPEC", 5334, 60, 33, 6, 6, 6, 6, 0, 0, 4, 12, false},
        {"fpppp", "SPEC", 2718, 23, 8, 88, 12, 88, 12, 0, 0, 0, 0, false},
        {"hydro2d", "SPEC", 4461, 110, 55, 100, 0, 100, 0, 44, 11, 0, 0, false},
        {"matrix300", "SPEC", 439, 4, 2, 50, 50, 50, 50, 0, 0, 1, 2, false},
        {"mdljdp2", "SPEC", 4316, 4, 1, 0, 0, 0, 0, 0, 0, 0, 0, false},
        {"mdljsp2", "SPEC", 3885, 4, 1, 0, 0, 0, 0, 0, 0, 0, 0, false},
        {"ora", "SPEC", 453, 6, 3, 100, 0, 100, 0, 0, 0, 0, 0, false},
        {"su2cor", "SPEC", 2514, 84, 36, 42, 19, 42, 19, 0, 0, 4, 8, false},
        {"swm256", "SPEC", 487, 16, 8, 88, 12, 88, 12, 0, 0, 0, 0, false},
        {"tomcatv", "SPEC", 195, 12, 6, 100, 0, 100, 0, 7, 2, 0, 0, false},
        {"appbt", "NAS", 4457, 181, 87, 98, 0, 100, 0, 3, 1, 0, 0, false},
        {"applu", "NAS", 3285, 155, 71, 73, 3, 79, 6, 3, 1, 2, 6, false},
        {"appsp", "NAS", 3516, 184, 84, 73, 12, 80, 12, 8, 4, 0, 0, false},
        {"buk", "NAS", 305, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, false},
        {"cgm", "NAS", 855, 11, 6, 0, 0, 0, 0, 0, 0, 0, 0, true},
        {"embar", "NAS", 265, 3, 2, 50, 0, 50, 0, 0, 0, 0, 0, false},
        {"fftpde", "NAS", 773, 40, 18, 89, 0, 100, 0, 0, 0, 0, 0, false},
        {"mgrid", "NAS", 676, 43, 19, 89, 11, 100, 0, 3, 1, 1, 2, false},
        {"erlebacher", "Misc", 870, 75, 30, 83, 13, 100, 0, 28, 11, 0, 0, false},
        {"linpackd", "Misc", 797, 8, 4, 75, 0, 75, 0, 3, 1, 0, 0, false},
        {"simple", "Misc", 1892, 39, 22, 86, 9, 86, 9, 6, 2, 0, 0, false},
        {"wave", "Misc", 7519, 180, 85, 58, 29, 65, 29, 70, 26, 0, 0, false},
    };
    return specs;
}

namespace {

/** Generator for one synthetic program. */
class Synth
{
  public:
    Synth(const CorpusSpec &spec, int64_t extent)
        : b_(spec.name), n_(b_.param("N", extent))
    {
        MEMORIA_ASSERT(extent >= 8, "corpus extent must be >= 8");
        i_ = b_.loopVar("I");
        j_ = b_.loopVar("J");
        k_ = b_.loopVar("K");
    }

    /** Depth-2 nest already in memory order (unit stride innermost). */
    void
    goodNest2()
    {
        Arr a = mat();
        Arr c = mat();
        b_.add(b_.loop(j_, 1, n_,
                       b_.loop(i_, 1, n_,
                               b_.assign(a(i_, j_),
                                         a(i_, j_) + c(i_, j_)))));
    }

    /** Depth-3 nest already in memory order. */
    void
    goodNest3()
    {
        Arr a = cube();
        b_.add(b_.loop(
            k_, 1, n_,
            b_.loop(j_, 1, n_,
                    b_.loop(i_, 1, n_,
                            b_.assign(a(i_, j_, k_),
                                      Val(a(i_, j_, k_)) + 1.0)))));
    }

    /** Depth-2 nest in memory order but carrying a transposed read:
     *  one reference group keeps no self-reuse whatever the order, as
     *  in the paper's Table 5 baseline (60% "None" groups). */
    void
    goodMixedNest2()
    {
        Arr a = mat(1);
        Arr c = mat();
        Arr d = mat();
        b_.add(b_.loop(j_, 1, n_,
                       b_.loop(i_, 1, n_,
                               b_.assign(c(i_, j_),
                                         a(j_, Ix(i_) + 1) +
                                             c(i_, j_) +
                                             d(i_, j_)))));
    }

    /** Depth-2 nest in the wrong order; interchange is legal. */
    void
    permNest2()
    {
        Arr a = mat();
        b_.add(b_.loop(i_, 1, n_,
                       b_.loop(j_, 1, n_,
                               b_.assign(a(i_, j_),
                                         Val(a(i_, j_)) + 1.0))));
    }

    /** Wrong order with a transposed read: permutation fixes the
     *  write's stride, the read stays non-unit. */
    void
    permMixedNest2()
    {
        Arr a = mat();
        Arr c = mat(1);
        Arr d = mat();
        b_.add(b_.loop(i_, 1, n_,
                       b_.loop(j_, 1, n_,
                               b_.assign(a(i_, j_),
                                         a(i_, j_) +
                                             c(j_, Ix(i_) + 1) +
                                             d(i_, j_)))));
    }

    /** Depth-3 nest with the unit-stride loop outermost. */
    void
    permNest3()
    {
        Arr a = cube();
        b_.add(b_.loop(
            i_, 1, n_,
            b_.loop(k_, 1, n_,
                    b_.loop(j_, 1, n_,
                            b_.assign(a(i_, j_, k_),
                                      Val(a(i_, j_, k_)) * 2.0)))));
    }

    /** Interchange blocked by a pair of antidiagonal dependences. */
    void
    failDepNest()
    {
        Arr a = mat(2);
        b_.add(b_.loop(
            i_, 2, n_,
            b_.loop(j_, 2, n_,
                    b_.assign(a(i_, j_),
                              a(Ix(i_) - 1, Ix(j_) + 1) +
                                  a(Ix(i_) - 1, Ix(j_) - 1)))));
    }

    /** Desired interchange blocked by a non-triangular bound. */
    void
    failBoundsNest()
    {
        Arr a = b_.array(fresh("B"), {Ix(n_), Ix(n_) * 2});
        b_.add(b_.loop(i_, 1, n_,
                       b_.loop(j_, 1, Ix(i_) * 2,
                               b_.assign(a(i_, j_), Val(j_)))));
    }

    /** Index-array subscripts: conservatively unanalyzable (Cgm). */
    void
    opaqueNest()
    {
        Arr x = vec();
        Arr ind = vec();
        Arr v = mat();
        Ref xr = x.at({opaqueSub(Val(ind(i_)))});
        b_.add(b_.loop(j_, 1, n_,
                       b_.loop(i_, 1, n_,
                               b_.assign(xr, Val(xr) + v(i_, j_)))));
    }

    /**
     * Depth-3 nest whose inner loop is already the right one but whose
     * outer pair is out of order (counts toward inner-orig but not
     * nest-orig; permutation fixes the rest). The B(K,J) read makes
     * LoopCost(J) > LoopCost(K) so memory order is (J, K, I).
     */
    void
    innerOkNest3()
    {
        Arr a = cube();
        Arr c = mat();
        b_.add(b_.loop(
            k_, 1, n_,
            b_.loop(j_, 1, n_,
                    b_.loop(i_, 1, n_,
                            b_.assign(a(i_, j_, k_),
                                      a(i_, j_, k_) + c(k_, j_))))));
    }

    /**
     * Depth-3 nest whose inner loop is right but whose outer pair can
     * never reach memory order: antidiagonal dependences block the
     * (K, J) interchange (counts toward inner-orig and nest-fail).
     */
    void
    failDepInnerOkNest3()
    {
        Arr a = b_.array(fresh("T"), {Ix(n_), Ix(n_) + 2, Ix(n_) + 2});
        Arr c = mat();
        b_.add(b_.loop(
            k_, 2, n_,
            b_.loop(j_, 2, n_,
                    b_.loop(i_, 1, n_,
                            b_.assign(
                                a(i_, j_, k_),
                                a(i_, Ix(j_) + 1, Ix(k_) - 1) +
                                    a(i_, Ix(j_) - 1, Ix(k_) - 1) +
                                    c(k_, j_))))));
    }

    /** Imperfect nest fixed by distribution + permutation (the KIJ
     *  elimination shape of Figure 7 / Gmtry). `parts` of 2 gives the
     *  classic split; 3 adds an independent leading statement. */
    void
    distributeNest(int parts = 2)
    {
        Arr a = mat();
        Arr m = mat();
        std::vector<NodePtr> ibody;
        if (parts >= 3) {
            Arr p = mat();
            ibody.push_back(
                b_.assign(p(i_, k_), Val(a(i_, k_)) + 1.0));
        }
        ibody.push_back(
            b_.assign(m(i_, k_), Val(a(i_, k_)) / a(k_, k_)));
        ibody.push_back(
            b_.loop(j_, Ix(k_) + 1, n_,
                    b_.assign(a(i_, j_),
                              a(i_, j_) - m(i_, k_) * a(k_, j_))));
        b_.add(b_.loop(k_, 1, Ix(n_) - 1,
                       b_.loop(i_, Ix(k_) + 1, n_, std::move(ibody))));
    }

    /** Two adjacent compatible nests that profitably fuse. */
    void
    fusionCluster()
    {
        Arr shared = mat();
        Arr o1 = mat();
        Arr o2 = mat();
        b_.add(b_.loop(j_, 1, n_,
                       b_.loop(i_, 1, n_,
                               b_.assign(o1(i_, j_),
                                         shared(i_, j_) + 1.0))));
        b_.add(b_.loop(j_, 1, n_,
                       b_.loop(i_, 1, n_,
                               b_.assign(o2(i_, j_),
                                         Val(shared(i_, j_)) * 2.0))));
    }

    /** Two adjacent compatible nests with nothing to gain by fusing. */
    void
    barrenPair()
    {
        Arr a = mat();
        Arr c = mat();
        b_.add(b_.loop(j_, 1, n_,
                       b_.loop(i_, 1, n_,
                               b_.assign(a(i_, j_), Val(i_)))));
        b_.add(b_.loop(j_, 1, n_,
                       b_.loop(i_, 1, n_,
                               b_.assign(c(i_, j_), Val(j_)))));
    }

    /** A depth-1 loop (counted in Loops, not in Nests). */
    void
    singleLoop()
    {
        Arr v = vec();
        b_.add(b_.loop(i_, 1, n_, b_.assign(v(i_), Val(i_))));
    }

    /** A separator with a distinct trip count so adjacent unrelated
     *  nests never look fusion-compatible. */
    void
    separator()
    {
        Arr v = vec(1);
        b_.add(b_.loop(i_, 1, Ix(n_) + 1,
                       b_.assign(v(i_), Val(i_) + 1.0)));
    }

    Program
    finish()
    {
        return b_.finish();
    }

  private:
    std::string
    fresh(const char *prefix)
    {
        return std::string(prefix) + std::to_string(counter_++);
    }

    Arr
    mat(int64_t pad = 0)
    {
        // Vary the leading dimension so array sizes are not all the
        // same power of two (which would alias pathologically in the
        // set-index bits, something real Fortran programs rarely do).
        int64_t lead = pad + (counter_ % 3);
        return b_.array(fresh("A"),
                        {Ix(n_) + lead, Ix(n_) + pad});
    }

    Arr
    cube()
    {
        return b_.array(fresh("T"), {Ix(n_), Ix(n_), Ix(n_)});
    }

    Arr
    vec(int64_t pad = 0)
    {
        return b_.array(fresh("V"), {Ix(n_) + pad});
    }

    ProgramBuilder b_;
    Var n_;
    Var i_, j_, k_;
    int counter_ = 0;
};

} // namespace

Program
buildCorpusProgram(const CorpusSpec &spec, int64_t extent)
{
    Synth s(spec, extent);

    int nests = spec.nests;
    int perm = (spec.pctPerm * nests + 50) / 100;
    int dist = std::min(spec.distributions, nests);
    int good = (spec.pctOrig * nests + 50) / 100;
    int fail = std::max(0, nests - good - perm - dist);
    good = nests - perm - dist - fail;

    // Nests whose inner loop is already right even though the whole
    // nest is not in memory order (Table 2's Inner Loop columns show
    // more "orig" than the nest columns). They come out of the perm
    // and fail budgets.
    int innerExtra = std::max(
        0, (spec.pctInnerOrig * nests + 50) / 100 - good);
    int innerOkPerm = std::min(innerExtra, std::max(0, perm - dist));
    int innerOkFail = std::min(innerExtra - innerOkPerm, fail);

    // Fusion structures come out of the "good" budget.
    int clusters = std::min(spec.fusionApplied / 2, good / 2);
    int barren = std::min(
        std::max(0, spec.fusionCandidates - spec.fusionApplied) / 2,
        std::max(0, good - 2 * clusters) / 2);
    good -= 2 * (clusters + barren);

    // Failure mix: Section 5.2 reports 87% of missed nests blocked by
    // dependences and the rest by complex bounds; the opaque-style
    // programs (Cgm, Mg3d) fail through unanalyzable subscripts.
    int failBounds = spec.opaqueStyle ? 0 : (13 * fail + 50) / 100;
    int failOpaque = spec.opaqueStyle ? fail : 0;
    int failDep = fail - failBounds - failOpaque;
    innerOkFail = std::min(innerOkFail, failDep);

    // Depth-3 share, then depth-1 loops to approximate the paper's
    // Loops column.
    int good3 = good / 4;
    int perm3 = perm / 4;
    int singles = std::max(
        0, spec.loops - (2 * nests + good3 + perm3 + 2 * dist));

    for (int c = 0; c < clusters; ++c) {
        s.fusionCluster();
        s.separator();
    }
    for (int c = 0; c < barren; ++c) {
        s.barrenPair();
        s.separator();
    }
    for (int c = 0; c < good - good3; ++c) {
        if (c % 2 == 1)
            s.goodMixedNest2();
        else
            s.goodNest2();
        s.separator();
    }
    for (int c = 0; c < good3; ++c) {
        s.goodNest3();
        s.separator();
    }
    int plainPerm = perm - innerOkPerm;
    int perm3b = std::min(perm3, plainPerm);
    for (int c = 0; c < plainPerm - perm3b; ++c) {
        if (c % 2 == 1)
            s.permMixedNest2();
        else
            s.permNest2();
        s.separator();
    }
    for (int c = 0; c < perm3b; ++c) {
        s.permNest3();
        s.separator();
    }
    for (int c = 0; c < innerOkPerm; ++c) {
        s.innerOkNest3();
        s.separator();
    }
    // Distribution arity follows the paper's R/D ratio per program.
    int arity =
        spec.distributions > 0 &&
                spec.distResulting >= 3 * spec.distributions
            ? 3
            : 2;
    for (int c = 0; c < dist; ++c) {
        s.distributeNest(arity);
        s.separator();
    }
    for (int c = 0; c < failDep - innerOkFail; ++c) {
        s.failDepNest();
        s.separator();
    }
    for (int c = 0; c < innerOkFail; ++c) {
        s.failDepInnerOkNest3();
        s.separator();
    }
    for (int c = 0; c < failBounds; ++c) {
        s.failBoundsNest();
        s.separator();
    }
    for (int c = 0; c < failOpaque; ++c) {
        s.opaqueNest();
        s.separator();
    }
    for (int c = 0; c < singles; ++c)
        s.singleLoop();

    return s.finish();
}

std::vector<Program>
buildCorpus(int64_t extent)
{
    std::vector<Program> out;
    out.reserve(corpusSpecs().size());
    for (const auto &spec : corpusSpecs())
        out.push_back(buildCorpusProgram(spec, extent));
    return out;
}

} // namespace memoria
