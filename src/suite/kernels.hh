/**
 * @file
 * The paper's kernels, built in the loop-nest IR.
 *
 * These are the programs the paper studies individually: matrix multiply
 * (Figure 2), the ADI integration fragment (Figure 3), Cholesky
 * factorization (Figure 7), an Erlebacher-style collection of
 * single-statement nests (Table 1), plus kernels standing in for the
 * benchmark routines discussed in Section 5.7 (Gmtry's row-oriented
 * Gaussian elimination, Simple's vectorizable hydrodynamics loops,
 * Vpenta-style scalarized vector code).
 */

#ifndef MEMORIA_SUITE_KERNELS_HH
#define MEMORIA_SUITE_KERNELS_HH

#include <string>

#include "ir/program.hh"

namespace memoria {

/**
 * Matrix multiply C += A*B with the loops nested in the given order,
 * e.g. "JKI" means J outermost, I innermost (Figure 2).
 */
Program makeMatmul(const std::string &order, int64_t n);

/** Cholesky factorization, KIJ form of Figure 7(a). */
Program makeCholeskyKIJ(int64_t n);

/** Cholesky factorization, the paper's hand-derived KJI output form
 *  (Figure 7(b)): distribution plus triangular interchange applied. */
Program makeCholeskyKJI(int64_t n);

/** ADI integration, Fortran-90-scalarized form of Figure 3(b):
 *  DO I { DO K {S1}; DO K {S2} }. */
Program makeAdiScalarized(int64_t n);

/** ADI integration after fusion and interchange (Figure 3(c)). */
Program makeAdiFused(int64_t n);

/**
 * An Erlebacher-style program: a sequence of single-statement loop
 * nests over shared 3D arrays, already in memory order (the
 * "Distributed" version of Table 1). Fusing recovers the temporal
 * locality between the nests.
 */
Program makeErlebacherDistributed(int64_t n);

/** The hand-coded Erlebacher variant: same computation, written with
 *  some statements manually combined (Table 1's "Hand"). */
Program makeErlebacherHand(int64_t n);

/** Gmtry-style kernel: Gaussian elimination sweeping across rows, so
 *  the innermost loop strides the second dimension (Section 5.7). */
Program makeGmtry(int64_t n);

/** Simple-style kernel: a "vectorizable" loop pair whose recurrence is
 *  carried by the outer loop (Section 5.7). */
Program makeSimpleHydro(int64_t n);

/** Vpenta-style kernel: scalarized vector code with non-unit-stride
 *  inner loops over several arrays. */
Program makeVpenta(int64_t n);

/** Jacobi 4-point relaxation written with the wrong loop order. */
Program makeJacobiBadOrder(int64_t n);

} // namespace memoria

#endif // MEMORIA_SUITE_KERNELS_HH
