/**
 * @file
 * Interpreter for the loop-nest IR.
 *
 * Executes a Program over real column-major arrays, streaming every
 * scalar memory access to an optional MemoryListener (typically a cache
 * simulator). The interpreter serves three purposes:
 *
 *  1. semantic validation — the test suite requires transformed
 *     programs to produce bit-identical array contents;
 *  2. cache-hit-rate measurement for the paper's Table 4;
 *  3. a simple cycle model (statement cost + miss penalty) standing in
 *     for the paper's wall-clock numbers in Tables 1 and 3.
 */

#ifndef MEMORIA_INTERP_INTERP_HH
#define MEMORIA_INTERP_INTERP_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cachesim/cache.hh"
#include "ir/program.hh"

namespace memoria {

/** Execution counters. */
struct ExecStats
{
    uint64_t stmtsExecuted = 0;
    uint64_t memRefs = 0;
    uint64_t loopIterations = 0;
};

/** Crude latency model for simulated "performance" numbers. */
struct MachineModel
{
    double cyclesPerStmt = 1.0;
    double cyclesPerRef = 1.0;
    double missPenalty = 16.0;
};

/** Executes one program binding. */
class Interpreter
{
  public:
    explicit Interpreter(const Program &prog);

    /** Override a parameter value before running (by name). */
    void setParam(const std::string &name, int64_t value);

    /** Execute the whole program, reporting accesses to `listener`. */
    void run(MemoryListener *listener = nullptr);

    /** Raw data of one array (valid after construction). */
    const std::vector<double> &arrayData(ArrayId a) const;

    /** FNV-1a checksum over the bit patterns of every array. */
    uint64_t checksum() const;

    /** Checksum restricted to the first `count` arrays — lets callers
     *  compare programs that differ only by appended register
     *  temporaries (scalar replacement, unroll-and-jam). */
    uint64_t checksumFirstArrays(size_t count) const;

    const ExecStats &stats() const { return stats_; }

    /** Bound value of a parameter. */
    int64_t paramValue(VarId v) const;

    /** Virtual base address of an array. */
    uint64_t arrayBase(ArrayId a) const { return bases_.at(a); }

  private:
    void allocate();
    void execNode(const Node &n, MemoryListener *listener);
    void execStmt(const Statement &s, MemoryListener *listener);
    double evalValue(const ValuePtr &v, MemoryListener *listener);
    int64_t evalAffine(const AffineExpr &e) const;
    uint64_t elementIndex(const ArrayRef &ref, MemoryListener *listener);

    const Program &prog_;
    std::vector<int64_t> env_;            ///< VarId -> current value
    std::vector<std::vector<double>> data_;
    std::vector<uint64_t> bases_;
    std::vector<std::vector<int64_t>> extents_;
    ExecStats stats_;
    bool ran_ = false;
};

/** Result of one simulated execution against a cache. */
struct RunResult
{
    ExecStats exec;
    CacheStats cache;
    double cycles = 0.0;
    uint64_t checksum = 0;
};

/** Run a program against one cache configuration. */
RunResult runWithCache(const Program &prog, const CacheConfig &config,
                       const MachineModel &machine = MachineModel{});

/** Run without a cache, for semantics checks only. */
uint64_t runChecksum(const Program &prog);

} // namespace memoria

#endif // MEMORIA_INTERP_INTERP_HH
