/**
 * @file
 * Interpreter for the loop-nest IR.
 *
 * Executes a Program over real column-major arrays, streaming every
 * scalar memory access to an optional MemoryListener (typically a cache
 * simulator). The interpreter serves three purposes:
 *
 *  1. semantic validation — the test suite requires transformed
 *     programs to produce bit-identical array contents;
 *  2. cache-hit-rate measurement for the paper's Table 4;
 *  3. a simple cycle model (statement cost + miss penalty) standing in
 *     for the paper's wall-clock numbers in Tables 1 and 3.
 */

#ifndef MEMORIA_INTERP_INTERP_HH
#define MEMORIA_INTERP_INTERP_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cachesim/cache.hh"
#include "cachesim/sweep.hh"
#include "check/diag.hh"
#include "ir/program.hh"

namespace memoria {

class Tape;

/**
 * Interpreter execution engine. `Tape` (the default) compiles each
 * program binding once into a flat bytecode tape (interp/tape.hh) and
 * dispatches over it; `Tree` walks the pointer-based IR directly. Both
 * produce bit-identical results — array contents, ExecStats, access
 * streams, Diags — which the `memoria diffinterp` CI job enforces; the
 * tree walker is retained as the differential reference.
 */
enum class InterpMode
{
    Tree,
    Tape,
};

/** Process-wide default mode: an explicit setDefaultInterpMode() call
 *  wins, else the MEMORIA_INTERP environment variable ("tree"/"tape"),
 *  else Tape. */
InterpMode defaultInterpMode();

/** Override the process-wide default (the CLI's --interp flag). */
void setDefaultInterpMode(InterpMode mode);

/** Parse "tree"/"tape"; nullopt for anything else. */
std::optional<InterpMode> parseInterpMode(const std::string &name);

/** "tree" or "tape". */
const char *interpModeName(InterpMode mode);

/** Execution counters. */
struct ExecStats
{
    uint64_t stmtsExecuted = 0;
    uint64_t memRefs = 0;
    uint64_t loopIterations = 0;
};

/** Crude latency model for simulated "performance" numbers. */
struct MachineModel
{
    double cyclesPerStmt = 1.0;
    double cyclesPerRef = 1.0;
    double missPenalty = 16.0;
};

/** Executes one program binding. */
class Interpreter
{
  public:
    explicit Interpreter(const Program &prog);
    ~Interpreter();

    /** Select the execution engine for this instance (before run());
     *  new instances start from defaultInterpMode(). */
    void setMode(InterpMode mode);
    InterpMode mode() const { return mode_; }

    /** Override a parameter value before running (by name). Unknown
     *  names and non-positive resulting extents report a Diag. */
    Status setParam(const std::string &name, int64_t value);

    /** Re-seed the deterministic initial array contents and
     *  re-initialize the arrays (differential testing runs the same
     *  program pair under several initializations). */
    void setInitSeed(uint64_t seed);

    /**
     * Execute the whole program, reporting accesses to `listener`.
     *
     * Program-dependent faults — out-of-bounds subscripts, rank
     * mismatches, MOD by zero — stop execution and come back as a
     * Diag; they are properties of the *input*, not internal bugs, so
     * they must not terminate the process (docs/ROBUSTNESS.md).
     */
    Status run(MemoryListener *listener = nullptr);

    /**
     * Execute the whole program, delivering accesses to `sink` in
     * batches (cachesim/sweep.hh) instead of one virtual call per
     * reference. The trailing partial batch is flushed even when the
     * run faults, so the sink's counters always reflect the stream up
     * to the fault. Null sink behaves like run(nullptr).
     */
    Status runBatched(AccessBatchSink *sink);

    /** Raw data of one array (valid after construction). Contents are
     *  materialized lazily; the first read fills the buffer with the
     *  deterministic seeded initial values. */
    const std::vector<double> &arrayData(ArrayId a) const;

    /** Element count of one array under the current binding, without
     *  materializing its contents. */
    uint64_t arrayElems(ArrayId a) const;

    /** FNV-1a checksum over the bit patterns of every array. */
    uint64_t checksum() const;

    /** Checksum restricted to the first `count` arrays — lets callers
     *  compare programs that differ only by appended register
     *  temporaries (scalar replacement, unroll-and-jam). */
    uint64_t checksumFirstArrays(size_t count) const;

    const ExecStats &stats() const { return stats_; }

    /** Bound value of a parameter. */
    int64_t paramValue(VarId v) const;

    /** Virtual base address of an array. */
    uint64_t arrayBase(ArrayId a) const { return bases_.at(a); }

    /** The compiled tape for the current binding (tape mode only;
     *  compiled lazily on first run). Exposed for the disassembly
     *  golden test and the diffinterp tooling. */
    const Tape &compiledTape();

  private:
    friend class Tape;

    void allocate();
    void ensureArray(ArrayId a) const;
    void ensureReferenced() const;
    const int64_t *extentsOf(ArrayId a) const
    {
        return extentPool_.data() + extentOff_[a];
    }
    int rankOf(ArrayId a) const
    {
        return static_cast<int>(extentOff_[a + 1] - extentOff_[a]);
    }
    Status runInternal(MemoryListener *listener, AccessBatchSink *sink);
    void execNode(const Node &n, MemoryListener *listener);
    void execStmt(const Statement &s, MemoryListener *listener);
    double evalValue(const ValuePtr &v, MemoryListener *listener);
    int64_t evalAffine(const AffineExpr &e) const;
    uint64_t elementIndex(const ArrayRef &ref, MemoryListener *listener);
    [[noreturn]] void fault(std::string code, std::string msg) const;
    std::string loopContext() const;

    const Program &prog_;
    std::vector<int64_t> env_;            ///< VarId -> current value
    /**
     * Array contents, filled lazily (mutable: reads through the const
     * accessors materialize on demand). A verification pass touches a
     * handful of a program's arrays; eagerly hashing initial values
     * into every buffer on construction, after every setParam and
     * again after setInitSeed dominated the equivalence oracle.
     */
    mutable std::vector<std::vector<double>> data_;
    mutable std::vector<uint8_t> filled_; ///< per-array fill flag
    std::vector<uint8_t> referenced_;     ///< arrays the body touches
    std::vector<uint64_t> bases_;
    /** Concrete extents, flattened: array `a` owns
     *  extentPool_[extentOff_[a] .. extentOff_[a+1]). Ranks are fixed
     *  by the declaration, so offsets are computed once. */
    std::vector<int64_t> extentPool_;
    std::vector<uint32_t> extentOff_;
    ExecStats stats_;
    uint64_t initSeed_ = 0;
    std::optional<Diag> allocError_;      ///< deferred allocation fault
    std::vector<VarId> loopStack_;        ///< active loops, outer first
    int curStmt_ = -1;                    ///< executing statement id
    bool ran_ = false;
    InterpMode mode_;
    std::unique_ptr<Tape> tape_;          ///< lazily compiled binding
};

/** Result of one simulated execution against a cache. */
struct RunResult
{
    ExecStats exec;
    CacheStats cache;
    double cycles = 0.0;
    uint64_t checksum = 0;
};

/** Run a program against one cache configuration. Panics on a program
 *  fault; use tryRunWithCache for untrusted programs. */
RunResult runWithCache(const Program &prog, const CacheConfig &config,
                       const MachineModel &machine = MachineModel{});

/** Checked variant: a faulting program reports a Diag instead. The
 *  batch driver uses this so one bad program cannot abort the pool. */
Result<RunResult> tryRunWithCache(
    const Program &prog, const CacheConfig &config,
    const MachineModel &machine = MachineModel{});

/** Result of one execution simulated against several caches at once. */
struct SweepResult
{
    ExecStats exec;
    /** Per-config counters, parallel to the `configs` argument. */
    std::vector<CacheStats> cache;
    /** Per-config modeled cycles, parallel to `configs`. */
    std::vector<double> cycles;
    uint64_t checksum = 0;
};

/**
 * Run a program once and simulate every configuration in `configs`
 * from that single interpreter pass (cachesim/sweep.hh). Counters are
 * identical to per-config runWithCache calls; the interpreter — the
 * expensive part — executes once instead of N times. Panics on a
 * program fault; use tryRunWithCaches for untrusted programs.
 */
SweepResult runWithCaches(const Program &prog,
                          const std::vector<CacheConfig> &configs,
                          const MachineModel &machine = MachineModel{});

/** Checked variant: a faulting program reports a Diag instead. */
Result<SweepResult> tryRunWithCaches(
    const Program &prog, const std::vector<CacheConfig> &configs,
    const MachineModel &machine = MachineModel{});

/** Run without a cache, for semantics checks only. Panics on a
 *  program fault; use tryRunChecksum for untrusted programs. */
uint64_t runChecksum(const Program &prog);

/** Checked variant: a faulting program reports a Diag instead. */
Result<uint64_t> tryRunChecksum(const Program &prog);

} // namespace memoria

#endif // MEMORIA_INTERP_INTERP_HH
