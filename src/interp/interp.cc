#include "interp/interp.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "harness/budget.hh"
#include "harness/fault.hh"
#include "interp/tape.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace memoria {

namespace {

harness::FaultSite gInterpFault("interp.run", /*supportsDiag=*/true);

/** Poll the budget token every this many loop iterations (shared with
 *  the tape path via kInterpPollStride in interp/tape.hh). */
constexpr uint64_t kPollStride = kInterpPollStride;

/** Process-wide default engine; -1 until first resolved. */
std::atomic<int> gDefaultMode{-1};

/** Deterministic small integer-valued initial data. Using integers in a
 *  narrow range keeps floating-point arithmetic exact, so reordered
 *  evaluation in transformed programs cannot mask (or fake) semantic
 *  differences. The seed selects one of many such initializations for
 *  differential testing; seed 0 reproduces the historical contents. */
double
initialValue(ArrayId a, uint64_t index, uint64_t seed)
{
    uint64_t h = (static_cast<uint64_t>(a) + 1) * 0x9e3779b97f4a7c15ULL;
    h ^= (index + 1) * 0xbf58476d1ce4e5b9ULL;
    h ^= seed * 0x94d049bb133111ebULL;
    h ^= h >> 29;
    return static_cast<double>(1 + (h % 7));
}

constexpr uint64_t kBaseAddress = 0x100000;

/** Internal unwind for program-dependent faults; never escapes run().
 *  Shared with the tape engine (interp/tape.hh). */
using Fault = interp_detail::Fault;

} // namespace

InterpMode
defaultInterpMode()
{
    int m = gDefaultMode.load(std::memory_order_relaxed);
    if (m >= 0)
        return static_cast<InterpMode>(m);
    InterpMode resolved = InterpMode::Tape;
    if (const char *env = std::getenv("MEMORIA_INTERP"))
        if (std::optional<InterpMode> parsed = parseInterpMode(env))
            resolved = *parsed;
    gDefaultMode.store(static_cast<int>(resolved),
                       std::memory_order_relaxed);
    return resolved;
}

void
setDefaultInterpMode(InterpMode mode)
{
    gDefaultMode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

std::optional<InterpMode>
parseInterpMode(const std::string &name)
{
    if (name == "tree")
        return InterpMode::Tree;
    if (name == "tape")
        return InterpMode::Tape;
    return std::nullopt;
}

const char *
interpModeName(InterpMode mode)
{
    return mode == InterpMode::Tree ? "tree" : "tape";
}

namespace {

/** Mark every array id a statement tree references (writes, loads,
 *  and loads inside opaque subscripts). Shared Value spines may be
 *  visited more than once; the walk is idempotent and the IR is small
 *  next to the data it would otherwise force us to initialize. */
void
markRefArrays(const ArrayRef &ref, std::vector<uint8_t> &mark);

void
markValueArrays(const ValuePtr &v, std::vector<uint8_t> &mark)
{
    if (!v)
        return;
    if (v->op == ValOp::Load)
        markRefArrays(v->load, mark);
    for (const ValuePtr &kid : v->kids)
        markValueArrays(kid, mark);
}

void
markRefArrays(const ArrayRef &ref, std::vector<uint8_t> &mark)
{
    if (ref.array >= 0 && static_cast<size_t>(ref.array) < mark.size())
        mark[ref.array] = 1;
    for (const Subscript &s : ref.subs)
        if (!s.isAffine())
            markValueArrays(s.opaque, mark);
}

void
markNodeArrays(const Node &n, std::vector<uint8_t> &mark)
{
    if (n.isStmt()) {
        markRefArrays(n.stmt.write, mark);
        markValueArrays(n.stmt.rhs, mark);
        return;
    }
    for (const NodePtr &kid : n.body)
        markNodeArrays(*kid, mark);
}

} // namespace

Interpreter::Interpreter(const Program &prog)
    : prog_(prog), mode_(defaultInterpMode())
{
    env_.assign(prog_.vars.size(), 0);
    for (size_t v = 0; v < prog_.vars.size(); ++v)
        if (prog_.vars[v].kind == VarKind::Param)
            env_[v] = prog_.vars[v].paramValue;

    const size_t n = prog_.arrays.size();
    data_.resize(n);
    filled_.assign(n, 0);
    bases_.assign(n, 0);
    extentOff_.resize(n + 1);
    uint32_t off = 0;
    for (size_t a = 0; a < n; ++a) {
        extentOff_[a] = off;
        off += static_cast<uint32_t>(prog_.arrays[a].extents.size());
    }
    extentOff_[n] = off;
    extentPool_.assign(off, 0);

    referenced_.assign(n, 0);
    for (const NodePtr &node : prog_.body)
        markNodeArrays(*node, referenced_);

    allocate();
}

Interpreter::~Interpreter() = default;

void
Interpreter::setMode(InterpMode mode)
{
    MEMORIA_ASSERT(!ran_, "setMode after run");
    mode_ = mode;
}

const Tape &
Interpreter::compiledTape()
{
    MEMORIA_ASSERT(!allocError_, "compiledTape with allocation error");
    if (!tape_) {
        ensureReferenced();  // the tape binds raw data pointers
        tape_ = std::make_unique<Tape>(prog_, *this);
    }
    return *tape_;
}

Status
Interpreter::setParam(const std::string &name, int64_t value)
{
    MEMORIA_ASSERT(!ran_, "setParam after run");
    for (size_t v = 0; v < prog_.vars.size(); ++v) {
        if (prog_.vars[v].kind == VarKind::Param &&
            prog_.vars[v].name == name) {
            env_[v] = value;
            allocate();
            if (allocError_)
                return Status::err(*allocError_);
            return Status{};
        }
    }
    return Status::err(
        Diag::error("interp.param", "unknown parameter '" + name + "'"));
}

void
Interpreter::setInitSeed(uint64_t seed)
{
    MEMORIA_ASSERT(!ran_, "setInitSeed after run");
    initSeed_ = seed;
    std::fill(filled_.begin(), filled_.end(), 0);
    allocate();
}

/**
 * Recompute the binding: concrete extents, virtual base addresses and
 * the deferred allocation error. Array contents are NOT filled here —
 * they materialize lazily (ensureArray) so the repeated rebinding the
 * equivalence oracle performs (construct, setParam per parameter,
 * setInitSeed) costs extent arithmetic, not a full data refill each
 * time. An array whose extents are unchanged keeps its filled data.
 */
void
Interpreter::allocate()
{
    allocError_.reset();
    tape_.reset();  // the compiled binding is stale
    uint64_t next = kBaseAddress;
    for (size_t a = 0; a < prog_.arrays.size(); ++a) {
        const ArrayDecl &decl = prog_.arrays[a];
        int64_t *ext = extentPool_.data() + extentOff_[a];
        uint64_t elems = 1;
        bool changed = false;
        for (size_t k = 0; k < decl.extents.size(); ++k) {
            int64_t x = evalAffine(decl.extents[k]);
            if (x <= 0) {
                allocError_ = Diag::error(
                    "interp.extent", "non-positive extent " +
                                         std::to_string(x) +
                                         " for array " + decl.name);
                std::fill(filled_.begin(), filled_.end(), 0);
                return;
            }
            if (ext[k] != x) {
                ext[k] = x;
                changed = true;
            }
            elems *= static_cast<uint64_t>(x);
        }
        if (changed)
            filled_[a] = 0;
        bases_[a] = next;
        next += elems * decl.elemSize;
    }
}

uint64_t
Interpreter::arrayElems(ArrayId a) const
{
    MEMORIA_ASSERT(a >= 0 && static_cast<size_t>(a) < data_.size(),
                   "arrayElems out of range");
    const int64_t *ext = extentsOf(a);
    uint64_t elems = 1;
    for (int k = 0; k < rankOf(a); ++k)
        elems *= static_cast<uint64_t>(ext[k]);
    return elems;
}

void
Interpreter::ensureArray(ArrayId a) const
{
    if (filled_[a])
        return;
    MEMORIA_ASSERT(!allocError_, "ensureArray with allocation error");
    uint64_t elems = arrayElems(a);
    std::vector<double> &buf = data_[a];
    buf.resize(elems);
    for (uint64_t i = 0; i < elems; ++i)
        buf[i] = initialValue(a, i, initSeed_);
    filled_[a] = 1;
}

void
Interpreter::ensureReferenced() const
{
    for (size_t a = 0; a < referenced_.size(); ++a)
        if (referenced_[a])
            ensureArray(static_cast<ArrayId>(a));
}

/** The enclosing-loop iteration snapshot, e.g. " in DO I=3, DO J=5". */
std::string
Interpreter::loopContext() const
{
    std::string s;
    for (VarId v : loopStack_)
        s += (s.empty() ? " in DO " : ", DO ") + prog_.varName(v) + "=" +
             std::to_string(env_[v]);
    if (curStmt_ >= 0)
        s += " (statement " + std::to_string(curStmt_) + ")";
    return s;
}

void
Interpreter::fault(std::string code, std::string msg) const
{
    throw Fault{Diag::error(std::move(code), msg + loopContext())};
}

int64_t
Interpreter::evalAffine(const AffineExpr &e) const
{
    return e.eval([this](VarId v) { return env_[v]; });
}

int64_t
Interpreter::paramValue(VarId v) const
{
    MEMORIA_ASSERT(prog_.varInfo(v).kind == VarKind::Param,
                   "paramValue of a loop variable");
    return env_[v];
}

uint64_t
Interpreter::elementIndex(const ArrayRef &ref, MemoryListener *listener)
{
    if (ref.array < 0 ||
        static_cast<size_t>(ref.array) >= data_.size())
        fault("interp.array",
              "reference to out-of-range array id " +
                  std::to_string(ref.array));
    const int64_t *ext = extentsOf(ref.array);
    const size_t rank = static_cast<size_t>(rankOf(ref.array));
    if (ref.subs.size() != rank)
        fault("interp.rank",
              "rank " + std::to_string(ref.subs.size()) +
                  " reference to rank " + std::to_string(rank) +
                  " array " + prog_.arrayDecl(ref.array).name);
    uint64_t index = 0;
    uint64_t stride = 1;
    for (size_t k = 0; k < ref.subs.size(); ++k) {
        int64_t s;
        if (ref.subs[k].isAffine())
            s = evalAffine(ref.subs[k].affine);
        else
            s = std::llround(evalValue(ref.subs[k].opaque, listener));
        if (s < 1 || s > ext[k])
            fault("interp.oob",
                  "subscript " + std::to_string(k + 1) + " = " +
                      std::to_string(s) + " out of bounds 1.." +
                      std::to_string(ext[k]) + " on array " +
                      prog_.arrayDecl(ref.array).name);
        index += static_cast<uint64_t>(s - 1) * stride;
        stride *= static_cast<uint64_t>(ext[k]);
    }
    return index;
}

double
Interpreter::evalValue(const ValuePtr &v, MemoryListener *listener)
{
    MEMORIA_ASSERT(v != nullptr, "null value");
    switch (v->op) {
      case ValOp::Const:
        return v->constant;
      case ValOp::Index:
        return static_cast<double>(evalAffine(v->index));
      case ValOp::Load: {
        uint64_t idx = elementIndex(v->load, listener);
        const ArrayDecl &decl = prog_.arrayDecl(v->load.array);
        if (!decl.isRegister) {
            ++stats_.memRefs;
            if (listener)
                listener->access(bases_[v->load.array] +
                                     idx * decl.elemSize,
                                 decl.elemSize, false);
        }
        return data_[v->load.array][idx];
      }
      case ValOp::Add:
        return evalValue(v->kids[0], listener) +
               evalValue(v->kids[1], listener);
      case ValOp::Sub:
        return evalValue(v->kids[0], listener) -
               evalValue(v->kids[1], listener);
      case ValOp::Mul:
        return evalValue(v->kids[0], listener) *
               evalValue(v->kids[1], listener);
      case ValOp::Div:
        return evalValue(v->kids[0], listener) /
               evalValue(v->kids[1], listener);
      case ValOp::Neg:
        return -evalValue(v->kids[0], listener);
      case ValOp::Sqrt:
        return std::sqrt(evalValue(v->kids[0], listener));
      case ValOp::Min:
        return std::min(evalValue(v->kids[0], listener),
                        evalValue(v->kids[1], listener));
      case ValOp::Max:
        return std::max(evalValue(v->kids[0], listener),
                        evalValue(v->kids[1], listener));
      case ValOp::IMod: {
        int64_t a = std::llround(evalValue(v->kids[0], listener));
        int64_t b = std::llround(evalValue(v->kids[1], listener));
        if (b == 0)
            fault("interp.mod_zero", "MOD by zero");
        int64_t m = a % b;
        if (m < 0)
            m += std::abs(b);
        return static_cast<double>(m);
      }
    }
    panic("unhandled value op");
}

void
Interpreter::execStmt(const Statement &s, MemoryListener *listener)
{
    curStmt_ = s.id;
    double value = evalValue(s.rhs, listener);
    uint64_t idx = elementIndex(s.write, listener);
    const ArrayDecl &decl = prog_.arrayDecl(s.write.array);
    if (!decl.isRegister) {
        ++stats_.memRefs;
        if (listener)
            listener->access(bases_[s.write.array] + idx * decl.elemSize,
                             decl.elemSize, true);
    }
    data_[s.write.array][idx] = value;
    ++stats_.stmtsExecuted;
}

void
Interpreter::execNode(const Node &n, MemoryListener *listener)
{
    if (n.isStmt()) {
        execStmt(n.stmt, listener);
        return;
    }
    if (n.step == 0)
        fault("interp.step",
              "loop over '" + prog_.varName(n.var) + "' has step 0");
    loopStack_.push_back(n.var);
    int64_t lb = evalAffine(n.lb);
    int64_t ub = evalAffine(n.ub);
    if (n.step > 0) {
        for (int64_t v = lb; v <= ub; v += n.step) {
            if ((++stats_.loopIterations & (kPollStride - 1)) == 0)
                harness::chargeIterations(kPollStride, "interp.loop");
            env_[n.var] = v;
            for (const auto &kid : n.body)
                execNode(*kid, listener);
        }
    } else {
        for (int64_t v = lb; v >= ub; v += n.step) {
            if ((++stats_.loopIterations & (kPollStride - 1)) == 0)
                harness::chargeIterations(kPollStride, "interp.loop");
            env_[n.var] = v;
            for (const auto &kid : n.body)
                execNode(*kid, listener);
        }
    }
    loopStack_.pop_back();
}

Status
Interpreter::run(MemoryListener *listener)
{
    return runInternal(listener, nullptr);
}

Status
Interpreter::runBatched(AccessBatchSink *sink)
{
    if (!sink)
        return run(nullptr);
    return runInternal(nullptr, sink);
}

Status
Interpreter::runInternal(MemoryListener *listener, AccessBatchSink *sink)
{
    obs::TraceScope span("interp", "run");
    span.arg("program", prog_.name);

    ran_ = true;
    if (std::optional<Diag> injected = gInterpFault.fire()) {
        ++obs::counter("interp.faults");
        return Status::err(*injected);
    }
    if (allocError_) {
        ++obs::counter("interp.faults");
        return Status::err(*allocError_);
    }

    ensureReferenced();

    Status st;
    if (mode_ == InterpMode::Tape) {
        if (!tape_)
            tape_ = std::make_unique<Tape>(prog_, *this);
        try {
            if (sink)
                tape_->runBatched(*this, sink);
            else
                tape_->run(*this, listener);
        } catch (const Fault &f) {
            st = Status::err(f.diag);
        }
    } else {
        // Tree walker: batched sinks go through the buffering adapter
        // (one virtual call per access). Kept verbatim as the
        // differential reference for the tape.
        std::optional<BatchingListener> batcher;
        if (sink) {
            batcher.emplace(*sink);
            listener = &*batcher;
        }
        try {
            for (const auto &n : prog_.body)
                execNode(*n, listener);
        } catch (const Fault &f) {
            st = Status::err(f.diag);
        }
        // Flush the trailing partial batch, also after a fault; a
        // cancellation has already propagated past us, unflushed,
        // matching the historical behaviour.
        if (batcher)
            batcher->flush();
    }

    if (!st.ok()) {
        ++obs::counter("interp.faults");
        if (span.active())
            span.arg("fault", st.diag().str());
        return st;
    }

    // Publish aggregates once per run: the per-iteration path stays a
    // plain member increment.
    static obs::Counter &cRuns = obs::counter("interp.runs");
    static obs::Counter &cIters = obs::counter("interp.loop_iterations");
    static obs::Counter &cStmts = obs::counter("interp.stmts_executed");
    static obs::Counter &cRefs = obs::counter("interp.mem_refs");
    ++cRuns;
    cIters += stats_.loopIterations;
    cStmts += stats_.stmtsExecuted;
    cRefs += stats_.memRefs;

    if (span.active()) {
        span.arg("loop_iterations", stats_.loopIterations);
        span.arg("stmts_executed", stats_.stmtsExecuted);
        span.arg("mem_refs", stats_.memRefs);
    }
    return Status{};
}

const std::vector<double> &
Interpreter::arrayData(ArrayId a) const
{
    MEMORIA_ASSERT(a >= 0 && static_cast<size_t>(a) < data_.size(),
                   "arrayData out of range");
    ensureArray(a);
    return data_[a];
}

uint64_t
Interpreter::checksum() const
{
    return checksumFirstArrays(data_.size());
}

uint64_t
Interpreter::checksumFirstArrays(size_t count) const
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t a = 0; a < count && a < data_.size(); ++a) {
        ensureArray(static_cast<ArrayId>(a));
        const auto &arr = data_[a];
        for (double d : arr) {
            uint64_t bits;
            static_assert(sizeof(bits) == sizeof(d));
            std::memcpy(&bits, &d, sizeof(bits));
            for (int b = 0; b < 8; ++b) {
                h ^= (bits >> (8 * b)) & 0xff;
                h *= 0x100000001b3ULL;
            }
        }
    }
    return h;
}

RunResult
runWithCache(const Program &prog, const CacheConfig &config,
             const MachineModel &machine)
{
    Result<RunResult> r = tryRunWithCache(prog, config, machine);
    MEMORIA_ASSERT(r.ok(), "runWithCache on faulting program: "
                               << r.diag().str());
    return r.value();
}

Result<RunResult>
tryRunWithCache(const Program &prog, const CacheConfig &config,
                const MachineModel &machine)
{
    obs::TraceScope span("interp", "run_with_cache");
    span.arg("program", prog.name);
    span.arg("cache", config.name);

    Interpreter interp(prog);
    Cache cache(config);
    Status st = interp.run(&cache);
    if (!st.ok()) {
        if (span.active())
            span.arg("fault", st.diag().str());
        return Result<RunResult>::err(st.diag());
    }
    cache.publishStats();

    RunResult r;
    r.exec = interp.stats();
    r.cache = cache.stats();
    r.cycles = machine.cyclesPerStmt * r.exec.stmtsExecuted +
               machine.cyclesPerRef * r.exec.memRefs +
               machine.missPenalty * r.cache.misses;
    r.checksum = interp.checksum();
    if (span.active()) {
        span.arg("accesses", r.cache.accesses);
        span.arg("hits", r.cache.hits);
        span.arg("misses", r.cache.misses);
        span.arg("evictions", r.cache.evictions);
        span.arg("cycles", r.cycles);
    }
    return r;
}

SweepResult
runWithCaches(const Program &prog,
              const std::vector<CacheConfig> &configs,
              const MachineModel &machine)
{
    Result<SweepResult> r = tryRunWithCaches(prog, configs, machine);
    MEMORIA_ASSERT(r.ok(), "runWithCaches on faulting program: "
                               << r.diag().str());
    return r.value();
}

Result<SweepResult>
tryRunWithCaches(const Program &prog,
                 const std::vector<CacheConfig> &configs,
                 const MachineModel &machine)
{
    obs::TraceScope span("interp", "run_with_caches");
    span.arg("program", prog.name);
    span.arg("configs", static_cast<uint64_t>(configs.size()));

    Interpreter interp(prog);
    MultiCacheSim sim(configs);
    Status st = interp.runBatched(&sim);
    if (!st.ok()) {
        if (span.active())
            span.arg("fault", st.diag().str());
        return Result<SweepResult>::err(st.diag());
    }

    static obs::Counter &cSweeps = obs::counter("interp.sweep_runs");
    static obs::Counter &cConfigs = obs::counter("interp.sweep_configs");
    ++cSweeps;
    cConfigs += configs.size();

    SweepResult r;
    r.exec = interp.stats();
    r.checksum = interp.checksum();
    r.cache.reserve(configs.size());
    r.cycles.reserve(configs.size());
    for (size_t i = 0; i < sim.configCount(); ++i) {
        sim.cache(i).publishStats();
        const CacheStats &cs = sim.stats(i);
        cs.checkConsistent();
        r.cache.push_back(cs);
        r.cycles.push_back(machine.cyclesPerStmt * r.exec.stmtsExecuted +
                           machine.cyclesPerRef * r.exec.memRefs +
                           machine.missPenalty * cs.misses);
    }
    if (span.active()) {
        span.arg("mem_refs", r.exec.memRefs);
        for (size_t i = 0; i < r.cache.size(); ++i)
            span.arg("misses_" + std::to_string(i), r.cache[i].misses);
    }
    return r;
}

uint64_t
runChecksum(const Program &prog)
{
    Result<uint64_t> r = tryRunChecksum(prog);
    MEMORIA_ASSERT(r.ok(), "runChecksum on faulting program: "
                               << r.diag().str());
    return r.value();
}

Result<uint64_t>
tryRunChecksum(const Program &prog)
{
    Interpreter interp(prog);
    Status st = interp.run(nullptr);
    if (!st.ok())
        return Result<uint64_t>::err(st.diag());
    return interp.checksum();
}

} // namespace memoria
