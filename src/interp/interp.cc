#include "interp/interp.hh"

#include <cmath>
#include <cstring>

#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace memoria {

namespace {

/** Deterministic small integer-valued initial data. Using integers in a
 *  narrow range keeps floating-point arithmetic exact, so reordered
 *  evaluation in transformed programs cannot mask (or fake) semantic
 *  differences. */
double
initialValue(ArrayId a, uint64_t index)
{
    uint64_t h = (static_cast<uint64_t>(a) + 1) * 0x9e3779b97f4a7c15ULL;
    h ^= (index + 1) * 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 29;
    return static_cast<double>(1 + (h % 7));
}

constexpr uint64_t kBaseAddress = 0x100000;

} // namespace

Interpreter::Interpreter(const Program &prog) : prog_(prog)
{
    env_.assign(prog_.vars.size(), 0);
    for (size_t v = 0; v < prog_.vars.size(); ++v)
        if (prog_.vars[v].kind == VarKind::Param)
            env_[v] = prog_.vars[v].paramValue;
    allocate();
}

void
Interpreter::setParam(const std::string &name, int64_t value)
{
    MEMORIA_ASSERT(!ran_, "setParam after run");
    for (size_t v = 0; v < prog_.vars.size(); ++v) {
        if (prog_.vars[v].kind == VarKind::Param &&
            prog_.vars[v].name == name) {
            env_[v] = value;
            allocate();
            return;
        }
    }
    fatal("unknown parameter '" + name + "'");
}

void
Interpreter::allocate()
{
    data_.clear();
    bases_.clear();
    extents_.clear();
    uint64_t next = kBaseAddress;
    for (size_t a = 0; a < prog_.arrays.size(); ++a) {
        const ArrayDecl &decl = prog_.arrays[a];
        std::vector<int64_t> ext;
        uint64_t elems = 1;
        for (const auto &e : decl.extents) {
            int64_t x = evalAffine(e);
            MEMORIA_ASSERT(x > 0, "non-positive extent for array "
                                      << decl.name);
            ext.push_back(x);
            elems *= static_cast<uint64_t>(x);
        }
        extents_.push_back(std::move(ext));
        bases_.push_back(next);
        next += elems * decl.elemSize;

        std::vector<double> buf(elems);
        for (uint64_t i = 0; i < elems; ++i)
            buf[i] = initialValue(static_cast<ArrayId>(a), i);
        data_.push_back(std::move(buf));
    }
}

int64_t
Interpreter::evalAffine(const AffineExpr &e) const
{
    return e.eval([this](VarId v) { return env_[v]; });
}

int64_t
Interpreter::paramValue(VarId v) const
{
    MEMORIA_ASSERT(prog_.varInfo(v).kind == VarKind::Param,
                   "paramValue of a loop variable");
    return env_[v];
}

uint64_t
Interpreter::elementIndex(const ArrayRef &ref, MemoryListener *listener)
{
    const auto &ext = extents_[ref.array];
    MEMORIA_ASSERT(ref.subs.size() == ext.size(),
                   "rank mismatch on array "
                       << prog_.arrayDecl(ref.array).name);
    uint64_t index = 0;
    uint64_t stride = 1;
    for (size_t k = 0; k < ref.subs.size(); ++k) {
        int64_t s;
        if (ref.subs[k].isAffine())
            s = evalAffine(ref.subs[k].affine);
        else
            s = std::llround(evalValue(ref.subs[k].opaque, listener));
        MEMORIA_ASSERT(s >= 1 && s <= ext[k],
                       "subscript " << s << " out of bounds 1.."
                                    << ext[k] << " on array "
                                    << prog_.arrayDecl(ref.array).name);
        index += static_cast<uint64_t>(s - 1) * stride;
        stride *= static_cast<uint64_t>(ext[k]);
    }
    return index;
}

double
Interpreter::evalValue(const ValuePtr &v, MemoryListener *listener)
{
    MEMORIA_ASSERT(v != nullptr, "null value");
    switch (v->op) {
      case ValOp::Const:
        return v->constant;
      case ValOp::Index:
        return static_cast<double>(evalAffine(v->index));
      case ValOp::Load: {
        uint64_t idx = elementIndex(v->load, listener);
        const ArrayDecl &decl = prog_.arrayDecl(v->load.array);
        if (!decl.isRegister) {
            ++stats_.memRefs;
            if (listener)
                listener->access(bases_[v->load.array] +
                                     idx * decl.elemSize,
                                 decl.elemSize, false);
        }
        return data_[v->load.array][idx];
      }
      case ValOp::Add:
        return evalValue(v->kids[0], listener) +
               evalValue(v->kids[1], listener);
      case ValOp::Sub:
        return evalValue(v->kids[0], listener) -
               evalValue(v->kids[1], listener);
      case ValOp::Mul:
        return evalValue(v->kids[0], listener) *
               evalValue(v->kids[1], listener);
      case ValOp::Div:
        return evalValue(v->kids[0], listener) /
               evalValue(v->kids[1], listener);
      case ValOp::Neg:
        return -evalValue(v->kids[0], listener);
      case ValOp::Sqrt:
        return std::sqrt(evalValue(v->kids[0], listener));
      case ValOp::Min:
        return std::min(evalValue(v->kids[0], listener),
                        evalValue(v->kids[1], listener));
      case ValOp::Max:
        return std::max(evalValue(v->kids[0], listener),
                        evalValue(v->kids[1], listener));
      case ValOp::IMod: {
        int64_t a = std::llround(evalValue(v->kids[0], listener));
        int64_t b = std::llround(evalValue(v->kids[1], listener));
        MEMORIA_ASSERT(b != 0, "MOD by zero");
        int64_t m = a % b;
        if (m < 0)
            m += std::abs(b);
        return static_cast<double>(m);
      }
    }
    panic("unhandled value op");
}

void
Interpreter::execStmt(const Statement &s, MemoryListener *listener)
{
    double value = evalValue(s.rhs, listener);
    uint64_t idx = elementIndex(s.write, listener);
    const ArrayDecl &decl = prog_.arrayDecl(s.write.array);
    if (!decl.isRegister) {
        ++stats_.memRefs;
        if (listener)
            listener->access(bases_[s.write.array] + idx * decl.elemSize,
                             decl.elemSize, true);
    }
    data_[s.write.array][idx] = value;
    ++stats_.stmtsExecuted;
}

void
Interpreter::execNode(const Node &n, MemoryListener *listener)
{
    if (n.isStmt()) {
        execStmt(n.stmt, listener);
        return;
    }
    int64_t lb = evalAffine(n.lb);
    int64_t ub = evalAffine(n.ub);
    if (n.step > 0) {
        for (int64_t v = lb; v <= ub; v += n.step) {
            ++stats_.loopIterations;
            env_[n.var] = v;
            for (const auto &kid : n.body)
                execNode(*kid, listener);
        }
    } else {
        for (int64_t v = lb; v >= ub; v += n.step) {
            ++stats_.loopIterations;
            env_[n.var] = v;
            for (const auto &kid : n.body)
                execNode(*kid, listener);
        }
    }
}

void
Interpreter::run(MemoryListener *listener)
{
    obs::TraceScope span("interp", "run");
    span.arg("program", prog_.name);

    ran_ = true;
    for (const auto &n : prog_.body)
        execNode(*n, listener);

    // Publish aggregates once per run: the per-iteration path stays a
    // plain member increment.
    static obs::Counter &cRuns = obs::counter("interp.runs");
    static obs::Counter &cIters = obs::counter("interp.loop_iterations");
    static obs::Counter &cStmts = obs::counter("interp.stmts_executed");
    static obs::Counter &cRefs = obs::counter("interp.mem_refs");
    ++cRuns;
    cIters += stats_.loopIterations;
    cStmts += stats_.stmtsExecuted;
    cRefs += stats_.memRefs;

    if (span.active()) {
        span.arg("loop_iterations", stats_.loopIterations);
        span.arg("stmts_executed", stats_.stmtsExecuted);
        span.arg("mem_refs", stats_.memRefs);
    }
}

const std::vector<double> &
Interpreter::arrayData(ArrayId a) const
{
    return data_.at(a);
}

uint64_t
Interpreter::checksum() const
{
    return checksumFirstArrays(data_.size());
}

uint64_t
Interpreter::checksumFirstArrays(size_t count) const
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t a = 0; a < count && a < data_.size(); ++a) {
        const auto &arr = data_[a];
        for (double d : arr) {
            uint64_t bits;
            static_assert(sizeof(bits) == sizeof(d));
            std::memcpy(&bits, &d, sizeof(bits));
            for (int b = 0; b < 8; ++b) {
                h ^= (bits >> (8 * b)) & 0xff;
                h *= 0x100000001b3ULL;
            }
        }
    }
    return h;
}

RunResult
runWithCache(const Program &prog, const CacheConfig &config,
             const MachineModel &machine)
{
    obs::TraceScope span("interp", "run_with_cache");
    span.arg("program", prog.name);
    span.arg("cache", config.name);

    Interpreter interp(prog);
    Cache cache(config);
    interp.run(&cache);
    cache.publishStats();

    RunResult r;
    r.exec = interp.stats();
    r.cache = cache.stats();
    r.cycles = machine.cyclesPerStmt * r.exec.stmtsExecuted +
               machine.cyclesPerRef * r.exec.memRefs +
               machine.missPenalty * r.cache.misses;
    r.checksum = interp.checksum();
    if (span.active()) {
        span.arg("accesses", r.cache.accesses);
        span.arg("hits", r.cache.hits);
        span.arg("misses", r.cache.misses);
        span.arg("evictions", r.cache.evictions);
        span.arg("cycles", r.cycles);
    }
    return r;
}

uint64_t
runChecksum(const Program &prog)
{
    Interpreter interp(prog);
    interp.run(nullptr);
    return interp.checksum();
}

} // namespace memoria
