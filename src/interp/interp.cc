#include "interp/interp.hh"

#include <cmath>
#include <cstring>

#include "harness/budget.hh"
#include "harness/fault.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace memoria {

namespace {

harness::FaultSite gInterpFault("interp.run", /*supportsDiag=*/true);

/** Poll the budget token every this many loop iterations; a power of
 *  two so the hot-loop check is one AND plus a branch. */
constexpr uint64_t kPollStride = 4096;

/** Deterministic small integer-valued initial data. Using integers in a
 *  narrow range keeps floating-point arithmetic exact, so reordered
 *  evaluation in transformed programs cannot mask (or fake) semantic
 *  differences. The seed selects one of many such initializations for
 *  differential testing; seed 0 reproduces the historical contents. */
double
initialValue(ArrayId a, uint64_t index, uint64_t seed)
{
    uint64_t h = (static_cast<uint64_t>(a) + 1) * 0x9e3779b97f4a7c15ULL;
    h ^= (index + 1) * 0xbf58476d1ce4e5b9ULL;
    h ^= seed * 0x94d049bb133111ebULL;
    h ^= h >> 29;
    return static_cast<double>(1 + (h % 7));
}

constexpr uint64_t kBaseAddress = 0x100000;

/** Internal unwind for program-dependent faults; never escapes run(). */
struct Fault
{
    Diag diag;
};

} // namespace

Interpreter::Interpreter(const Program &prog) : prog_(prog)
{
    env_.assign(prog_.vars.size(), 0);
    for (size_t v = 0; v < prog_.vars.size(); ++v)
        if (prog_.vars[v].kind == VarKind::Param)
            env_[v] = prog_.vars[v].paramValue;
    allocate();
}

Status
Interpreter::setParam(const std::string &name, int64_t value)
{
    MEMORIA_ASSERT(!ran_, "setParam after run");
    for (size_t v = 0; v < prog_.vars.size(); ++v) {
        if (prog_.vars[v].kind == VarKind::Param &&
            prog_.vars[v].name == name) {
            env_[v] = value;
            allocate();
            if (allocError_)
                return Status::err(*allocError_);
            return Status{};
        }
    }
    return Status::err(
        Diag::error("interp.param", "unknown parameter '" + name + "'"));
}

void
Interpreter::setInitSeed(uint64_t seed)
{
    MEMORIA_ASSERT(!ran_, "setInitSeed after run");
    initSeed_ = seed;
    allocate();
}

void
Interpreter::allocate()
{
    data_.clear();
    bases_.clear();
    extents_.clear();
    allocError_.reset();
    uint64_t next = kBaseAddress;
    for (size_t a = 0; a < prog_.arrays.size(); ++a) {
        const ArrayDecl &decl = prog_.arrays[a];
        std::vector<int64_t> ext;
        uint64_t elems = 1;
        for (const auto &e : decl.extents) {
            int64_t x = evalAffine(e);
            if (x <= 0) {
                allocError_ = Diag::error(
                    "interp.extent", "non-positive extent " +
                                         std::to_string(x) +
                                         " for array " + decl.name);
                return;
            }
            ext.push_back(x);
            elems *= static_cast<uint64_t>(x);
        }
        extents_.push_back(std::move(ext));
        bases_.push_back(next);
        next += elems * decl.elemSize;

        std::vector<double> buf(elems);
        for (uint64_t i = 0; i < elems; ++i)
            buf[i] = initialValue(static_cast<ArrayId>(a), i, initSeed_);
        data_.push_back(std::move(buf));
    }
}

/** The enclosing-loop iteration snapshot, e.g. " in DO I=3, DO J=5". */
std::string
Interpreter::loopContext() const
{
    std::string s;
    for (VarId v : loopStack_)
        s += (s.empty() ? " in DO " : ", DO ") + prog_.varName(v) + "=" +
             std::to_string(env_[v]);
    if (curStmt_ >= 0)
        s += " (statement " + std::to_string(curStmt_) + ")";
    return s;
}

void
Interpreter::fault(std::string code, std::string msg) const
{
    throw Fault{Diag::error(std::move(code), msg + loopContext())};
}

int64_t
Interpreter::evalAffine(const AffineExpr &e) const
{
    return e.eval([this](VarId v) { return env_[v]; });
}

int64_t
Interpreter::paramValue(VarId v) const
{
    MEMORIA_ASSERT(prog_.varInfo(v).kind == VarKind::Param,
                   "paramValue of a loop variable");
    return env_[v];
}

uint64_t
Interpreter::elementIndex(const ArrayRef &ref, MemoryListener *listener)
{
    if (ref.array < 0 ||
        static_cast<size_t>(ref.array) >= extents_.size())
        fault("interp.array",
              "reference to out-of-range array id " +
                  std::to_string(ref.array));
    const auto &ext = extents_[ref.array];
    if (ref.subs.size() != ext.size())
        fault("interp.rank",
              "rank " + std::to_string(ref.subs.size()) +
                  " reference to rank " + std::to_string(ext.size()) +
                  " array " + prog_.arrayDecl(ref.array).name);
    uint64_t index = 0;
    uint64_t stride = 1;
    for (size_t k = 0; k < ref.subs.size(); ++k) {
        int64_t s;
        if (ref.subs[k].isAffine())
            s = evalAffine(ref.subs[k].affine);
        else
            s = std::llround(evalValue(ref.subs[k].opaque, listener));
        if (s < 1 || s > ext[k])
            fault("interp.oob",
                  "subscript " + std::to_string(k + 1) + " = " +
                      std::to_string(s) + " out of bounds 1.." +
                      std::to_string(ext[k]) + " on array " +
                      prog_.arrayDecl(ref.array).name);
        index += static_cast<uint64_t>(s - 1) * stride;
        stride *= static_cast<uint64_t>(ext[k]);
    }
    return index;
}

double
Interpreter::evalValue(const ValuePtr &v, MemoryListener *listener)
{
    MEMORIA_ASSERT(v != nullptr, "null value");
    switch (v->op) {
      case ValOp::Const:
        return v->constant;
      case ValOp::Index:
        return static_cast<double>(evalAffine(v->index));
      case ValOp::Load: {
        uint64_t idx = elementIndex(v->load, listener);
        const ArrayDecl &decl = prog_.arrayDecl(v->load.array);
        if (!decl.isRegister) {
            ++stats_.memRefs;
            if (listener)
                listener->access(bases_[v->load.array] +
                                     idx * decl.elemSize,
                                 decl.elemSize, false);
        }
        return data_[v->load.array][idx];
      }
      case ValOp::Add:
        return evalValue(v->kids[0], listener) +
               evalValue(v->kids[1], listener);
      case ValOp::Sub:
        return evalValue(v->kids[0], listener) -
               evalValue(v->kids[1], listener);
      case ValOp::Mul:
        return evalValue(v->kids[0], listener) *
               evalValue(v->kids[1], listener);
      case ValOp::Div:
        return evalValue(v->kids[0], listener) /
               evalValue(v->kids[1], listener);
      case ValOp::Neg:
        return -evalValue(v->kids[0], listener);
      case ValOp::Sqrt:
        return std::sqrt(evalValue(v->kids[0], listener));
      case ValOp::Min:
        return std::min(evalValue(v->kids[0], listener),
                        evalValue(v->kids[1], listener));
      case ValOp::Max:
        return std::max(evalValue(v->kids[0], listener),
                        evalValue(v->kids[1], listener));
      case ValOp::IMod: {
        int64_t a = std::llround(evalValue(v->kids[0], listener));
        int64_t b = std::llround(evalValue(v->kids[1], listener));
        if (b == 0)
            fault("interp.mod_zero", "MOD by zero");
        int64_t m = a % b;
        if (m < 0)
            m += std::abs(b);
        return static_cast<double>(m);
      }
    }
    panic("unhandled value op");
}

void
Interpreter::execStmt(const Statement &s, MemoryListener *listener)
{
    curStmt_ = s.id;
    double value = evalValue(s.rhs, listener);
    uint64_t idx = elementIndex(s.write, listener);
    const ArrayDecl &decl = prog_.arrayDecl(s.write.array);
    if (!decl.isRegister) {
        ++stats_.memRefs;
        if (listener)
            listener->access(bases_[s.write.array] + idx * decl.elemSize,
                             decl.elemSize, true);
    }
    data_[s.write.array][idx] = value;
    ++stats_.stmtsExecuted;
}

void
Interpreter::execNode(const Node &n, MemoryListener *listener)
{
    if (n.isStmt()) {
        execStmt(n.stmt, listener);
        return;
    }
    if (n.step == 0)
        fault("interp.step",
              "loop over '" + prog_.varName(n.var) + "' has step 0");
    loopStack_.push_back(n.var);
    int64_t lb = evalAffine(n.lb);
    int64_t ub = evalAffine(n.ub);
    if (n.step > 0) {
        for (int64_t v = lb; v <= ub; v += n.step) {
            if ((++stats_.loopIterations & (kPollStride - 1)) == 0)
                harness::chargeIterations(kPollStride, "interp.loop");
            env_[n.var] = v;
            for (const auto &kid : n.body)
                execNode(*kid, listener);
        }
    } else {
        for (int64_t v = lb; v >= ub; v += n.step) {
            if ((++stats_.loopIterations & (kPollStride - 1)) == 0)
                harness::chargeIterations(kPollStride, "interp.loop");
            env_[n.var] = v;
            for (const auto &kid : n.body)
                execNode(*kid, listener);
        }
    }
    loopStack_.pop_back();
}

Status
Interpreter::run(MemoryListener *listener)
{
    obs::TraceScope span("interp", "run");
    span.arg("program", prog_.name);

    ran_ = true;
    if (std::optional<Diag> injected = gInterpFault.fire()) {
        ++obs::counter("interp.faults");
        return Status::err(*injected);
    }
    if (allocError_) {
        ++obs::counter("interp.faults");
        return Status::err(*allocError_);
    }
    try {
        for (const auto &n : prog_.body)
            execNode(*n, listener);
    } catch (const Fault &f) {
        ++obs::counter("interp.faults");
        if (span.active())
            span.arg("fault", f.diag.str());
        return Status::err(f.diag);
    }

    // Publish aggregates once per run: the per-iteration path stays a
    // plain member increment.
    static obs::Counter &cRuns = obs::counter("interp.runs");
    static obs::Counter &cIters = obs::counter("interp.loop_iterations");
    static obs::Counter &cStmts = obs::counter("interp.stmts_executed");
    static obs::Counter &cRefs = obs::counter("interp.mem_refs");
    ++cRuns;
    cIters += stats_.loopIterations;
    cStmts += stats_.stmtsExecuted;
    cRefs += stats_.memRefs;

    if (span.active()) {
        span.arg("loop_iterations", stats_.loopIterations);
        span.arg("stmts_executed", stats_.stmtsExecuted);
        span.arg("mem_refs", stats_.memRefs);
    }
    return Status{};
}

Status
Interpreter::runBatched(AccessBatchSink *sink)
{
    if (!sink)
        return run(nullptr);
    BatchingListener listener(*sink);
    Status st = run(&listener);
    listener.flush();
    return st;
}

const std::vector<double> &
Interpreter::arrayData(ArrayId a) const
{
    return data_.at(a);
}

uint64_t
Interpreter::checksum() const
{
    return checksumFirstArrays(data_.size());
}

uint64_t
Interpreter::checksumFirstArrays(size_t count) const
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t a = 0; a < count && a < data_.size(); ++a) {
        const auto &arr = data_[a];
        for (double d : arr) {
            uint64_t bits;
            static_assert(sizeof(bits) == sizeof(d));
            std::memcpy(&bits, &d, sizeof(bits));
            for (int b = 0; b < 8; ++b) {
                h ^= (bits >> (8 * b)) & 0xff;
                h *= 0x100000001b3ULL;
            }
        }
    }
    return h;
}

RunResult
runWithCache(const Program &prog, const CacheConfig &config,
             const MachineModel &machine)
{
    Result<RunResult> r = tryRunWithCache(prog, config, machine);
    MEMORIA_ASSERT(r.ok(), "runWithCache on faulting program: "
                               << r.diag().str());
    return r.value();
}

Result<RunResult>
tryRunWithCache(const Program &prog, const CacheConfig &config,
                const MachineModel &machine)
{
    obs::TraceScope span("interp", "run_with_cache");
    span.arg("program", prog.name);
    span.arg("cache", config.name);

    Interpreter interp(prog);
    Cache cache(config);
    Status st = interp.run(&cache);
    if (!st.ok()) {
        if (span.active())
            span.arg("fault", st.diag().str());
        return Result<RunResult>::err(st.diag());
    }
    cache.publishStats();

    RunResult r;
    r.exec = interp.stats();
    r.cache = cache.stats();
    r.cycles = machine.cyclesPerStmt * r.exec.stmtsExecuted +
               machine.cyclesPerRef * r.exec.memRefs +
               machine.missPenalty * r.cache.misses;
    r.checksum = interp.checksum();
    if (span.active()) {
        span.arg("accesses", r.cache.accesses);
        span.arg("hits", r.cache.hits);
        span.arg("misses", r.cache.misses);
        span.arg("evictions", r.cache.evictions);
        span.arg("cycles", r.cycles);
    }
    return r;
}

SweepResult
runWithCaches(const Program &prog,
              const std::vector<CacheConfig> &configs,
              const MachineModel &machine)
{
    Result<SweepResult> r = tryRunWithCaches(prog, configs, machine);
    MEMORIA_ASSERT(r.ok(), "runWithCaches on faulting program: "
                               << r.diag().str());
    return r.value();
}

Result<SweepResult>
tryRunWithCaches(const Program &prog,
                 const std::vector<CacheConfig> &configs,
                 const MachineModel &machine)
{
    obs::TraceScope span("interp", "run_with_caches");
    span.arg("program", prog.name);
    span.arg("configs", static_cast<uint64_t>(configs.size()));

    Interpreter interp(prog);
    MultiCacheSim sim(configs);
    Status st = interp.runBatched(&sim);
    if (!st.ok()) {
        if (span.active())
            span.arg("fault", st.diag().str());
        return Result<SweepResult>::err(st.diag());
    }

    static obs::Counter &cSweeps = obs::counter("interp.sweep_runs");
    static obs::Counter &cConfigs = obs::counter("interp.sweep_configs");
    ++cSweeps;
    cConfigs += configs.size();

    SweepResult r;
    r.exec = interp.stats();
    r.checksum = interp.checksum();
    r.cache.reserve(configs.size());
    r.cycles.reserve(configs.size());
    for (size_t i = 0; i < sim.configCount(); ++i) {
        sim.cache(i).publishStats();
        const CacheStats &cs = sim.stats(i);
        cs.checkConsistent();
        r.cache.push_back(cs);
        r.cycles.push_back(machine.cyclesPerStmt * r.exec.stmtsExecuted +
                           machine.cyclesPerRef * r.exec.memRefs +
                           machine.missPenalty * cs.misses);
    }
    if (span.active()) {
        span.arg("mem_refs", r.exec.memRefs);
        for (size_t i = 0; i < r.cache.size(); ++i)
            span.arg("misses_" + std::to_string(i), r.cache[i].misses);
    }
    return r;
}

uint64_t
runChecksum(const Program &prog)
{
    Result<uint64_t> r = tryRunChecksum(prog);
    MEMORIA_ASSERT(r.ok(), "runChecksum on faulting program: "
                               << r.diag().str());
    return r.value();
}

Result<uint64_t>
tryRunChecksum(const Program &prog)
{
    Interpreter interp(prog);
    Status st = interp.run(nullptr);
    if (!st.ok())
        return Result<uint64_t>::err(st.diag());
    return interp.checksum();
}

} // namespace memoria
