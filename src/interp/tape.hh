/**
 * @file
 * Flat bytecode tape for the interpreter hot loop.
 *
 * The tree walker in interp/interp.cc spends most of its time chasing
 * shared_ptr value spines and re-discovering per-reference facts —
 * array rank, extents, strides, bounds — on every single access. The
 * tape compiles one program binding (program + concrete parameter
 * values + array layout) into a flat instruction vector once, hoisting
 * everything compile-time-knowable out of the loop:
 *
 *  - **loop headers** carry their variable, bound expressions and step;
 *    the trip count is computed once per loop entry, so the back edge
 *    is a decrement, an env bump and a jump;
 *  - **affine subscripts are strength-reduced**: a multi-dimensional
 *    all-affine reference folds its column-major strides into the
 *    subscript coefficients, collapsing to ONE affine expression whose
 *    evaluation is `constant + sum(coeff * env[var])`;
 *  - **bounds checks are proven away** where interval analysis over
 *    the loop-variable ranges shows every subscript in bounds; such
 *    references execute as a single fast load/store op. References it
 *    cannot prove (or with opaque subscripts) fall back to guarded
 *    per-dimension ops that reproduce the tree walker's fault codes,
 *    messages and fault *order* exactly;
 *  - **accesses stream straight into the batch buffer**: execution is
 *    templated over an emitter policy, so `runBatched` appends to an
 *    AccessRecord array and flushes whole batches to the
 *    AccessBatchSink — no virtual call per access, no allocation.
 *
 * Semantics are bit-identical to the tree walker by construction:
 * identical ExecStats, identical access streams (same order, same
 * flush-on-fault behaviour), identical Diag codes and messages, and
 * identical budget polling on the 4096-iteration stride. The CI
 * differential job (`memoria diffinterp`) and tests/test_interp_tape.cc
 * enforce this for the corpus, the kernels and fuzz programs.
 */

#ifndef MEMORIA_INTERP_TAPE_HH
#define MEMORIA_INTERP_TAPE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cachesim/cache.hh"
#include "cachesim/sweep.hh"
#include "check/diag.hh"
#include "interp/arena.hh"
#include "ir/program.hh"

namespace memoria {

class Interpreter;

namespace interp_detail {

/** Internal unwind for program-dependent faults; caught by
 *  Interpreter::run and converted to a Diag. Shared by the tree walker
 *  and the tape so both modes funnel through one handler. */
struct Fault
{
    Diag diag;
};

} // namespace interp_detail

/** Budget poll cadence of the interpreter inner loop, in iterations; a
 *  power of two so the hot check is one AND plus a branch. Shared by
 *  the tree walker and the tape so cancellation points line up. */
constexpr uint64_t kInterpPollStride = 4096;

/**
 * One compiled program binding. Valid for the Interpreter's current
 * allocation (extents, bases, parameter values and data buffers); the
 * interpreter recompiles lazily after setParam/setInitSeed.
 */
class Tape
{
  public:
    /** Compile `prog` against the interpreter's current binding. */
    Tape(const Program &prog, const Interpreter &interp);

    /** Execute, reporting accesses to `listener` (null for none).
     *  Throws interp_detail::Fault on program faults. */
    void run(Interpreter &interp, MemoryListener *listener);

    /** Execute, streaming accesses to `sink` in batches. The trailing
     *  partial batch is flushed even when a fault unwinds (matching
     *  BatchingListener-based runs); cooperative cancellation is not
     *  intercepted. Throws interp_detail::Fault on program faults. */
    void runBatched(Interpreter &interp, AccessBatchSink *sink);

    /** Human-readable listing of the whole tape (golden-tested). */
    std::string disassemble() const;

    /** Number of references compiled to unguarded fast ops / to
     *  guarded per-dimension sequences (for tests and tracing). */
    int fastRefs() const { return fastRefs_; }
    int guardedRefs() const { return guardedRefs_; }

  private:
    enum class Op : uint8_t
    {
        Halt,
        LoopBegin,  ///< a=loop id, b=pc of matching LoopEnd
        LoopEnd,    ///< a=loop id, b=pc of first body instruction
        FaultOp,    ///< a=fault record (statically known fault)
        PushConst,  ///< imm=bit pattern of the double
        PushIndex,  ///< a=affine id
        Add, Sub, Mul, Div, Neg, Sqrt, Min, Max, IMod,
        RefBegin,   ///< open a guarded reference (index accumulator)
        DimAffine,  ///< a=dim record; affine subscript dimension
        DimOpaque,  ///< a=dim record; subscript value popped from stack
        LoadEnd,    ///< a=array id; finish guarded load
        StoreEnd,   ///< a=array id; finish guarded store
        LoadFast,   ///< a=linearized affine id, b=array id
        StoreFast,  ///< a=linearized affine id, b=array id
    };

    /** Register-array flag: no memory traffic, no access stream. */
    static constexpr uint8_t kFlagRegister = 1;

    struct Instr
    {
        Op op = Op::Halt;
        uint8_t flags = 0;
        uint16_t elem = 0;  ///< element size in bytes (loads/stores)
        int32_t a = 0;
        int32_t b = 0;
        int64_t imm = 0;    ///< base address / const bits / step
    };

    /** Affine pool entry; terms in termVar_/termCoeff_ (SoA). */
    struct Aff
    {
        int32_t firstTerm = 0;
        int32_t termCount = 0;
        int64_t constant = 0;
    };

    struct Loop
    {
        VarId var = kNoVar;
        int32_t lb = 0;        ///< affine id
        int32_t ub = 0;        ///< affine id
        int64_t step = 1;
        int64_t remaining = 0; ///< runtime trip counter
    };

    /** One guarded subscript dimension. */
    struct Dim
    {
        int32_t affine = kNoArena; ///< kNoArena for opaque subscripts
        int64_t extent = 0;
        int64_t stride = 1;
        int32_t subIndex = 0;      ///< 0-based dimension (messages)
        ArrayId array = -1;
        bool check = true;         ///< false when proven in bounds
    };

    /** Statically known fault, thrown when (and only when) reached. */
    struct FaultRec
    {
        std::string code;
        std::string msg;
    };

    /** Inclusive integer interval for the bounds prover. */
    struct Interval
    {
        int64_t lo = 0;
        int64_t hi = 0;
    };

    // --- compilation ---
    void compileNode(const ProgramArena &arena, ArenaId nodeId);
    void compileStmt(const ProgramArena &arena, ArenaId stmtId);
    void compileValue(const ProgramArena &arena, ArenaId valId);
    void compileRef(const ProgramArena &arena, ArenaId refId,
                    bool isStore);
    void emit(Instr in, int dstackEffect, int istackEffect);
    void emitFault(std::string code, std::string msg);
    /** Copy arena affine `id` into the tape pools (no AffineExpr
     *  reconstruction — compile cost matters for tiny oracle runs). */
    int32_t addAffine(const ProgramArena &arena, ArenaId id);
    /** Interval of arena affine `id` over the current loop-variable
     *  ranges; false when any variable is unbounded. */
    bool affineInterval(const ProgramArena &arena, ArenaId id,
                        Interval &out) const;

    // --- execution ---
    template <class Emitter> void execute(Interpreter &interp,
                                          Emitter &emitter);
    int64_t
    evalA(int32_t id, const int64_t *env) const
    {
        const Aff &a = affines_[id];
        int64_t r = a.constant;
        const int32_t *v = termVar_.data() + a.firstTerm;
        const int64_t *c = termCoeff_.data() + a.firstTerm;
        for (int32_t i = 0; i < a.termCount; ++i)
            r += c[i] * env[v[i]];
        return r;
    }
    [[noreturn]] void faultAt(Interpreter &interp, size_t pc,
                              int lastStmt, const std::string &code,
                              const std::string &msg) const;

    /** Reconstructed AffineExpr for disassembly. */
    AffineExpr affineExpr(int32_t id) const;

    const Program *prog_;

    /** Compile-time view of the interpreter's binding (extents, bases,
     *  parameter values); cleared once compilation finishes. */
    const Interpreter *binding_ = nullptr;

    std::vector<Instr> code_;
    std::vector<int32_t> stmtOfPc_;  ///< statement id per pc, or -1
    std::vector<Aff> affines_;
    std::vector<int32_t> termVar_;
    std::vector<int64_t> termCoeff_;
    std::vector<Loop> loops_;
    std::vector<Dim> dims_;
    std::vector<FaultRec> faults_;

    /** Per-array data pointers, bound at compile time (the tape is
     *  invalidated whenever the interpreter reallocates). */
    std::vector<double *> data_;

    // Evaluation scratch, sized to the compile-time maxima.
    std::vector<double> dstack_;
    std::vector<int64_t> istack_;
    std::vector<AccessRecord> batchBuf_;  ///< lazily sized 4096

    // Compile state.
    int curDepth_ = 0, maxDepth_ = 0;
    int curIDepth_ = 0, maxIDepth_ = 0;
    int32_t compileStmt_ = -1;
    std::vector<Interval> varIv_;
    std::vector<bool> varKnown_;
    int fastRefs_ = 0;
    int guardedRefs_ = 0;
};

} // namespace memoria

#endif // MEMORIA_INTERP_TAPE_HH
