/**
 * @file
 * Flat arena form of the loop-nest IR.
 *
 * The tree IR (ir/program.hh) is built for transformation: shared
 * immutable Value spines, unique_ptr node forests, std::function-driven
 * affine evaluation. All of that is pointer chasing on the hot path.
 * ProgramArena flattens one Program into index-based structure-of-arrays
 * pools — affine terms, subscripts, references, value nodes, statements
 * and loop nodes each live in one contiguous vector, and every
 * cross-reference is a 32-bit index instead of a pointer.
 *
 * The arena is the input to the bytecode compiler (interp/tape.hh); it
 * is also independently useful as a cache-friendly read-only snapshot
 * (children of a node are contiguous, value kids sit near their
 * parents). `toProgram()` reconstructs an equivalent tree program,
 * which the test suite uses to prove the flattening is lossless.
 *
 * Construction is linear in the size of the IR and performs no
 * per-element allocation beyond the pool vectors themselves.
 */

#ifndef MEMORIA_INTERP_ARENA_HH
#define MEMORIA_INTERP_ARENA_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/program.hh"

namespace memoria {

/** Index of an entity in one of the arena pools; -1 means "none". */
using ArenaId = int32_t;

constexpr ArenaId kNoArena = -1;

class ProgramArena
{
  public:
    /** Affine expression: terms_[firstTerm..) plus a constant. */
    struct Affine
    {
        int32_t firstTerm = 0;
        int32_t termCount = 0;
        int64_t constant = 0;
    };

    /** One affine term: coeff * var. */
    struct Term
    {
        VarId var = kNoVar;
        int64_t coeff = 0;
    };

    /** One subscript: affine expression or opaque value, never both. */
    struct Sub
    {
        ArenaId affine = kNoArena;  ///< valid when opaque is kNoArena
        ArenaId opaque = kNoArena;  ///< value id when unanalyzable
    };

    /** A subscripted array reference; subs are contiguous. */
    struct Ref
    {
        ArrayId array = -1;
        int32_t firstSub = 0;
        int32_t subCount = 0;
    };

    /** One value node. Kids are value ids (at most two per ValOp). */
    struct Val
    {
        ValOp op = ValOp::Const;
        double constant = 0.0;       ///< Const
        ArenaId index = kNoArena;    ///< Index: affine id
        ArenaId ref = kNoArena;      ///< Load: ref id
        ArenaId kid0 = kNoArena;
        ArenaId kid1 = kNoArena;
    };

    /** One assignment statement. */
    struct Stmt
    {
        int id = -1;
        ArenaId write = kNoArena;  ///< ref id
        ArenaId rhs = kNoArena;    ///< value id
    };

    /** A loop or statement node. Children are contiguous ids in
     *  childIndex(). */
    struct Node
    {
        bool isLoop = false;
        // Loop fields.
        VarId var = kNoVar;
        ArenaId lb = kNoArena;  ///< affine id
        ArenaId ub = kNoArena;  ///< affine id
        int64_t step = 1;
        int32_t firstChild = 0;
        int32_t childCount = 0;
        // Statement field.
        ArenaId stmt = kNoArena;
    };

    /** Array declaration with extents as affine ids. */
    struct Array
    {
        int32_t firstExtent = 0;
        int32_t extentCount = 0;
        int elemSize = 8;
        bool isRegister = false;
    };

    /** Flatten `prog`. The arena BORROWS the program's symbol tables
     *  (variables, array declarations, name) — the program must
     *  outlive the arena. Copying the tables per construction was
     *  measurable: verification-heavy workloads build an arena per
     *  interpreter pass, and corpus programs carry hundreds of array
     *  declarations. */
    explicit ProgramArena(const Program &prog);

    // Pool accessors (read-only views).
    const std::vector<Affine> &affines() const { return affines_; }
    const std::vector<Term> &terms() const { return terms_; }
    const std::vector<Sub> &subs() const { return subs_; }
    const std::vector<Ref> &refs() const { return refs_; }
    const std::vector<Val> &vals() const { return vals_; }
    const std::vector<Stmt> &stmts() const { return stmts_; }
    const std::vector<Node> &nodes() const { return nodes_; }
    const std::vector<Array> &arrays() const { return arrayRecs_; }
    /** Extent affine ids, indexed via Array::firstExtent. */
    const std::vector<ArenaId> &extentIds() const { return extentIds_; }
    /** Child node ids, indexed via Node::firstChild. */
    const std::vector<ArenaId> &childIndex() const { return children_; }
    /** Top-level node ids, in program order. */
    const std::vector<ArenaId> &roots() const { return roots_; }

    /** Borrowed symbol tables (see the constructor note). */
    const std::vector<VarInfo> &vars() const { return src_->vars; }
    const std::vector<ArrayDecl> &arrayDecls() const
    {
        return src_->arrays;
    }
    const std::string &name() const { return src_->name; }

    /** Evaluate affine `id` over a variable environment vector. */
    int64_t
    evalAffine(ArenaId id, const int64_t *env) const
    {
        const Affine &a = affines_[id];
        int64_t r = a.constant;
        const Term *t = terms_.data() + a.firstTerm;
        for (int32_t i = 0; i < a.termCount; ++i)
            r += t[i].coeff * env[t[i].var];
        return r;
    }

    /** Reconstruct the AffineExpr for pool entry `id`. */
    AffineExpr affineExpr(ArenaId id) const;

    /** Rebuild an equivalent tree Program (round-trip check). */
    Program toProgram() const;

  private:
    ArenaId addAffine(const AffineExpr &e);
    ArenaId addRef(const ArrayRef &ref);
    ArenaId addValue(const ValuePtr &v);
    ArenaId addNode(const ::memoria::Node &n);

    // Reconstruction helpers for toProgram().
    ArrayRef refExpr(ArenaId id) const;
    ValuePtr valueExpr(ArenaId id) const;
    NodePtr nodeExpr(ArenaId id) const;

    const Program *src_;

    std::vector<Affine> affines_;
    std::vector<Term> terms_;
    std::vector<Sub> subs_;
    std::vector<Ref> refs_;
    std::vector<Val> vals_;
    std::vector<Stmt> stmts_;
    std::vector<Node> nodes_;
    std::vector<Array> arrayRecs_;
    std::vector<ArenaId> extentIds_;
    std::vector<ArenaId> children_;
    std::vector<ArenaId> roots_;

    /** Values are shared DAGs; intern so the arena stays linear. */
    std::unordered_map<const Value *, ArenaId> valueMemo_;
};

} // namespace memoria

#endif // MEMORIA_INTERP_ARENA_HH
