#include "interp/arena.hh"

#include "support/logging.hh"

namespace memoria {

ProgramArena::ProgramArena(const Program &prog) : src_(&prog)
{
    arrayRecs_.reserve(prog.arrays.size());
    for (const ArrayDecl &decl : prog.arrays) {
        Array rec;
        rec.firstExtent = static_cast<int32_t>(extentIds_.size());
        rec.extentCount = static_cast<int32_t>(decl.extents.size());
        rec.elemSize = decl.elemSize;
        rec.isRegister = decl.isRegister;
        for (const AffineExpr &e : decl.extents)
            extentIds_.push_back(addAffine(e));
        arrayRecs_.push_back(rec);
    }
    for (const NodePtr &n : prog.body)
        roots_.push_back(addNode(*n));
}

ArenaId
ProgramArena::addAffine(const AffineExpr &e)
{
    Affine a;
    a.firstTerm = static_cast<int32_t>(terms_.size());
    a.termCount = static_cast<int32_t>(e.terms().size());
    a.constant = e.constant();
    for (const AffineExpr::Term &t : e.terms())
        terms_.push_back({t.first, t.second});
    affines_.push_back(a);
    return static_cast<ArenaId>(affines_.size() - 1);
}

ArenaId
ProgramArena::addRef(const ArrayRef &ref)
{
    // Children (subscripts, including opaque value trees) are added
    // first so the Ref's sub range is contiguous: opaque value ids are
    // recorded before the Sub records are appended.
    std::vector<Sub> local;
    local.reserve(ref.subs.size());
    for (const Subscript &s : ref.subs) {
        Sub sub;
        if (s.isAffine())
            sub.affine = addAffine(s.affine);
        else
            sub.opaque = addValue(s.opaque);
        local.push_back(sub);
    }
    Ref r;
    r.array = ref.array;
    r.firstSub = static_cast<int32_t>(subs_.size());
    r.subCount = static_cast<int32_t>(local.size());
    subs_.insert(subs_.end(), local.begin(), local.end());
    refs_.push_back(r);
    return static_cast<ArenaId>(refs_.size() - 1);
}

ArenaId
ProgramArena::addValue(const ValuePtr &v)
{
    MEMORIA_ASSERT(v != nullptr, "null value in arena build");
    auto memo = valueMemo_.find(v.get());
    if (memo != valueMemo_.end())
        return memo->second;

    Val rec;
    rec.op = v->op;
    switch (v->op) {
      case ValOp::Const:
        rec.constant = v->constant;
        break;
      case ValOp::Index:
        rec.index = addAffine(v->index);
        break;
      case ValOp::Load:
        rec.ref = addRef(v->load);
        break;
      default:
        MEMORIA_ASSERT(!v->kids.empty() && v->kids.size() <= 2,
                       "value arity out of range");
        rec.kid0 = addValue(v->kids[0]);
        if (v->kids.size() > 1)
            rec.kid1 = addValue(v->kids[1]);
        break;
    }
    vals_.push_back(rec);
    ArenaId id = static_cast<ArenaId>(vals_.size() - 1);
    valueMemo_.emplace(v.get(), id);
    return id;
}

ArenaId
ProgramArena::addNode(const ::memoria::Node &n)
{
    if (n.isStmt()) {
        Stmt s;
        s.id = n.stmt.id;
        s.write = addRef(n.stmt.write);
        s.rhs = addValue(n.stmt.rhs);
        stmts_.push_back(s);

        Node rec;
        rec.isLoop = false;
        rec.stmt = static_cast<ArenaId>(stmts_.size() - 1);
        nodes_.push_back(rec);
        return static_cast<ArenaId>(nodes_.size() - 1);
    }

    Node rec;
    rec.isLoop = true;
    rec.var = n.var;
    rec.lb = addAffine(n.lb);
    rec.ub = addAffine(n.ub);
    rec.step = n.step;

    // Build children first (their ids land anywhere in nodes_), then
    // record the contiguous id range in the child index pool.
    std::vector<ArenaId> kids;
    kids.reserve(n.body.size());
    for (const NodePtr &kid : n.body)
        kids.push_back(addNode(*kid));
    rec.firstChild = static_cast<int32_t>(children_.size());
    rec.childCount = static_cast<int32_t>(kids.size());
    children_.insert(children_.end(), kids.begin(), kids.end());

    nodes_.push_back(rec);
    return static_cast<ArenaId>(nodes_.size() - 1);
}

AffineExpr
ProgramArena::affineExpr(ArenaId id) const
{
    const Affine &a = affines_.at(id);
    AffineExpr e(a.constant);
    for (int32_t i = 0; i < a.termCount; ++i) {
        const Term &t = terms_[a.firstTerm + i];
        e = e + AffineExpr::makeVar(t.var, t.coeff);
    }
    return e;
}

ArrayRef
ProgramArena::refExpr(ArenaId id) const
{
    const Ref &r = refs_.at(id);
    ArrayRef out;
    out.array = r.array;
    out.subs.reserve(r.subCount);
    for (int32_t k = 0; k < r.subCount; ++k) {
        const Sub &s = subs_[r.firstSub + k];
        if (s.opaque != kNoArena)
            out.subs.push_back(Subscript::makeOpaque(valueExpr(s.opaque)));
        else
            out.subs.push_back(Subscript(affineExpr(s.affine)));
    }
    return out;
}

ValuePtr
ProgramArena::valueExpr(ArenaId id) const
{
    const Val &v = vals_.at(id);
    switch (v.op) {
      case ValOp::Const:
        return Value::makeConst(v.constant);
      case ValOp::Index:
        return Value::makeIndex(affineExpr(v.index));
      case ValOp::Load:
        return Value::makeLoad(refExpr(v.ref));
      default: {
        std::vector<ValuePtr> kids;
        kids.push_back(valueExpr(v.kid0));
        if (v.kid1 != kNoArena)
            kids.push_back(valueExpr(v.kid1));
        return Value::make(v.op, std::move(kids));
      }
    }
}

NodePtr
ProgramArena::nodeExpr(ArenaId id) const
{
    const Node &n = nodes_.at(id);
    if (!n.isLoop) {
        const Stmt &s = stmts_.at(n.stmt);
        Statement stmt;
        stmt.id = s.id;
        stmt.write = refExpr(s.write);
        stmt.rhs = valueExpr(s.rhs);
        return ::memoria::Node::makeStmt(std::move(stmt));
    }
    std::vector<NodePtr> body;
    body.reserve(n.childCount);
    for (int32_t i = 0; i < n.childCount; ++i)
        body.push_back(nodeExpr(children_[n.firstChild + i]));
    return ::memoria::Node::makeLoop(n.var, affineExpr(n.lb),
                                     affineExpr(n.ub), n.step,
                                     std::move(body));
}

Program
ProgramArena::toProgram() const
{
    Program out;
    out.name = src_->name;
    out.vars = src_->vars;
    out.arrays = src_->arrays;
    // Round-trip the extents through the affine pool as well, so the
    // test catches a lossy extent encoding, not just a lossy body.
    for (size_t a = 0; a < arrayRecs_.size(); ++a) {
        const Array &rec = arrayRecs_[a];
        out.arrays[a].extents.clear();
        for (int32_t i = 0; i < rec.extentCount; ++i)
            out.arrays[a].extents.push_back(
                affineExpr(extentIds_[rec.firstExtent + i]));
    }
    for (ArenaId root : roots_)
        out.body.push_back(nodeExpr(root));
    return out;
}

} // namespace memoria
