#include "interp/tape.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <sstream>

#include "harness/budget.hh"
#include "interp/interp.hh"
#include "support/logging.hh"

namespace memoria {

namespace {

/** Coefficient/stride ceiling for the linearized fast path. Keeping
 *  every factor below 2^20 bounds the strength-reduced affine away
 *  from int64 overflow (products <= 2^40, a handful of summands);
 *  anything wilder falls back to the guarded path, which evaluates
 *  dimension-by-dimension exactly like the tree walker. */
constexpr int64_t kLinLimit = int64_t(1) << 20;

struct NullEmitter
{
    void access(uint64_t, uint32_t, bool) {}
};

struct ListenerEmitter
{
    MemoryListener *listener;
    void
    access(uint64_t addr, uint32_t size, bool isWrite)
    {
        listener->access(addr, static_cast<int>(size), isWrite);
    }
};

/** Fills a fixed AccessRecord array and hands full batches to the
 *  sink: one store per access, one virtual call per 4096. */
struct BufferEmitter
{
    AccessRecord *buf;
    AccessBatchSink *sink;
    size_t n = 0;

    void
    access(uint64_t addr, uint32_t size, bool isWrite)
    {
        buf[n] = {addr, size, isWrite};
        if (++n == BatchingListener::kDefaultBatch) {
            sink->consumeBatch(buf, n);
            n = 0;
        }
    }
    void
    flush()
    {
        if (n) {
            sink->consumeBatch(buf, n);
            n = 0;
        }
    }
};

} // namespace

Tape::Tape(const Program &prog, const Interpreter &interp)
    : prog_(&prog), binding_(&interp)
{
    ProgramArena arena(prog);

    varIv_.assign(prog.vars.size(), Interval{});
    varKnown_.assign(prog.vars.size(), false);
    for (size_t v = 0; v < prog.vars.size(); ++v) {
        if (prog.vars[v].kind == VarKind::Param) {
            int64_t value = interp.env_[v];
            varIv_[v] = {value, value};
            varKnown_[v] = true;
        }
    }

    data_.reserve(interp.data_.size());
    for (const auto &buf : interp.data_)
        data_.push_back(const_cast<double *>(buf.data()));

    // Size the pools from the arena's counts; the estimates err high
    // by a small constant factor, never reallocate mid-compile.
    size_t instrGuess = arena.vals().size() + 2 * arena.refs().size() +
                        2 * arena.nodes().size() + 8;
    code_.reserve(instrGuess);
    stmtOfPc_.reserve(instrGuess);
    affines_.reserve(arena.affines().size() + arena.refs().size());
    termVar_.reserve(2 * arena.terms().size() + 8);
    termCoeff_.reserve(2 * arena.terms().size() + 8);

    for (ArenaId root : arena.roots())
        compileNode(arena, root);
    emit(Instr{}, 0, 0);  // Halt

    dstack_.resize(static_cast<size_t>(maxDepth_) + 1);
    istack_.resize(static_cast<size_t>(maxIDepth_) + 1);
    binding_ = nullptr;  // compile-only view
}

void
Tape::emit(Instr in, int dstackEffect, int istackEffect)
{
    code_.push_back(in);
    stmtOfPc_.push_back(compileStmt_);
    // Clamp at zero: instructions following a FaultOp inside the same
    // statement are dead code, and their pops would drive the model
    // negative.
    curDepth_ += dstackEffect;
    if (curDepth_ < 0)
        curDepth_ = 0;
    if (curDepth_ > maxDepth_)
        maxDepth_ = curDepth_;
    curIDepth_ += istackEffect;
    if (curIDepth_ < 0)
        curIDepth_ = 0;
    if (curIDepth_ > maxIDepth_)
        maxIDepth_ = curIDepth_;
}

void
Tape::emitFault(std::string code, std::string msg)
{
    faults_.push_back({std::move(code), std::move(msg)});
    Instr in;
    in.op = Op::FaultOp;
    in.a = static_cast<int32_t>(faults_.size() - 1);
    emit(in, 0, 0);
}

int32_t
Tape::addAffine(const ProgramArena &arena, ArenaId id)
{
    const ProgramArena::Affine &src = arena.affines()[id];
    const ProgramArena::Term *t = arena.terms().data() + src.firstTerm;
    Aff a;
    a.firstTerm = static_cast<int32_t>(termVar_.size());
    a.termCount = src.termCount;
    a.constant = src.constant;
    for (int32_t i = 0; i < src.termCount; ++i) {
        termVar_.push_back(t[i].var);
        termCoeff_.push_back(t[i].coeff);
    }
    affines_.push_back(a);
    return static_cast<int32_t>(affines_.size() - 1);
}

AffineExpr
Tape::affineExpr(int32_t id) const
{
    const Aff &a = affines_.at(id);
    AffineExpr e(a.constant);
    for (int32_t i = 0; i < a.termCount; ++i)
        e = e + AffineExpr::makeVar(termVar_[a.firstTerm + i],
                                    termCoeff_[a.firstTerm + i]);
    return e;
}

bool
Tape::affineInterval(const ProgramArena &arena, ArenaId id,
                     Interval &out) const
{
    // 128-bit accumulation cannot overflow for any realistic term
    // count; the result is clamped back into int64.
    const ProgramArena::Affine &e = arena.affines()[id];
    const ProgramArena::Term *terms =
        arena.terms().data() + e.firstTerm;
    __int128 lo = e.constant;
    __int128 hi = lo;
    for (int32_t i = 0; i < e.termCount; ++i) {
        const ProgramArena::Term &t = terms[i];
        if (static_cast<size_t>(t.var) >= varKnown_.size() ||
            !varKnown_[t.var])
            return false;
        const Interval &iv = varIv_[t.var];
        __int128 a = static_cast<__int128>(t.coeff) * iv.lo;
        __int128 b = static_cast<__int128>(t.coeff) * iv.hi;
        lo += a < b ? a : b;
        hi += a < b ? b : a;
    }
    constexpr __int128 kMax = INT64_MAX;
    constexpr __int128 kMin = INT64_MIN;
    out.lo = static_cast<int64_t>(lo < kMin ? kMin : (lo > kMax ? kMax : lo));
    out.hi = static_cast<int64_t>(hi < kMin ? kMin : (hi > kMax ? kMax : hi));
    return true;
}

void
Tape::compileNode(const ProgramArena &arena, ArenaId nodeId)
{
    const ProgramArena::Node &n = arena.nodes()[nodeId];
    if (!n.isLoop) {
        compileStmt(arena, n.stmt);
        return;
    }
    if (n.step == 0) {
        // Faults at execution time, like the tree walker: a zero-step
        // loop inside a never-entered region must not fault.
        emitFault("interp.step", "loop over '" + prog_->varName(n.var) +
                                     "' has step 0");
        return;
    }

    int32_t loopId = static_cast<int32_t>(loops_.size());
    loops_.push_back({n.var, addAffine(arena, n.lb),
                      addAffine(arena, n.ub), n.step, 0});

    size_t beginPc = code_.size();
    Instr begin;
    begin.op = Op::LoopBegin;
    begin.a = loopId;
    emit(begin, 0, 0);

    // Interval of the loop variable over every executed iteration:
    // for a positive step the values lie in [min(lb), max(ub)] (the
    // loop only runs when lb <= ub), mirrored for negative steps.
    Interval lbIv, ubIv, vi{};
    bool known = affineInterval(arena, n.lb, lbIv) &&
                 affineInterval(arena, n.ub, ubIv);
    if (known) {
        vi = n.step > 0 ? Interval{lbIv.lo, ubIv.hi}
                        : Interval{ubIv.lo, lbIv.hi};
        if (vi.lo > vi.hi)
            vi.hi = vi.lo;  // provably zero-trip; body is dead
    }
    Interval savedIv = varIv_[n.var];
    bool savedKnown = varKnown_[n.var];
    varIv_[n.var] = vi;
    varKnown_[n.var] = known;

    for (int32_t i = 0; i < n.childCount; ++i)
        compileNode(arena, arena.childIndex()[n.firstChild + i]);

    varIv_[n.var] = savedIv;
    varKnown_[n.var] = savedKnown;

    Instr end;
    end.op = Op::LoopEnd;
    end.a = loopId;
    end.b = static_cast<int32_t>(beginPc) + 1;
    size_t endPc = code_.size();
    emit(end, 0, 0);
    code_[beginPc].b = static_cast<int32_t>(endPc);
}

void
Tape::compileStmt(const ProgramArena &arena, ArenaId stmtId)
{
    const ProgramArena::Stmt &s = arena.stmts()[stmtId];
    compileStmt_ = s.id;
    // Statements begin and end with empty stacks; resetting the model
    // here confines any dead-code imprecision to one statement.
    curDepth_ = 0;
    curIDepth_ = 0;
    compileValue(arena, s.rhs);
    compileRef(arena, s.write, /*isStore=*/true);
    compileStmt_ = -1;
}

void
Tape::compileValue(const ProgramArena &arena, ArenaId valId)
{
    const ProgramArena::Val &v = arena.vals()[valId];
    switch (v.op) {
      case ValOp::Const: {
        Instr in;
        in.op = Op::PushConst;
        static_assert(sizeof(in.imm) == sizeof(v.constant));
        std::memcpy(&in.imm, &v.constant, sizeof(in.imm));
        emit(in, +1, 0);
        return;
      }
      case ValOp::Index: {
        Instr in;
        in.op = Op::PushIndex;
        in.a = addAffine(arena, v.index);
        emit(in, +1, 0);
        return;
      }
      case ValOp::Load:
        compileRef(arena, v.ref, /*isStore=*/false);
        return;
      case ValOp::Neg:
      case ValOp::Sqrt: {
        compileValue(arena, v.kid0);
        Instr in;
        in.op = v.op == ValOp::Neg ? Op::Neg : Op::Sqrt;
        emit(in, 0, 0);
        return;
      }
      default: {
        compileValue(arena, v.kid0);
        compileValue(arena, v.kid1);
        Instr in;
        switch (v.op) {
          case ValOp::Add: in.op = Op::Add; break;
          case ValOp::Sub: in.op = Op::Sub; break;
          case ValOp::Mul: in.op = Op::Mul; break;
          case ValOp::Div: in.op = Op::Div; break;
          case ValOp::Min: in.op = Op::Min; break;
          case ValOp::Max: in.op = Op::Max; break;
          case ValOp::IMod: in.op = Op::IMod; break;
          default: panic("unhandled value op in tape compile");
        }
        emit(in, -1, 0);
        return;
      }
    }
}

void
Tape::compileRef(const ProgramArena &arena, ArenaId refId, bool isStore)
{
    const ProgramArena::Ref &r = arena.refs()[refId];
    const Interpreter &I = *binding_;

    // Statically detectable faults compile to a FaultOp at the exact
    // execution point the tree walker would fault (before any
    // subscript of this reference is evaluated).
    if (r.array < 0 || static_cast<size_t>(r.array) >= I.data_.size()) {
        emitFault("interp.array", "reference to out-of-range array id " +
                                      std::to_string(r.array));
        return;
    }
    const int64_t *ext = I.extentsOf(r.array);
    if (r.subCount != I.rankOf(r.array)) {
        emitFault("interp.rank",
                  "rank " + std::to_string(r.subCount) +
                      " reference to rank " +
                      std::to_string(I.rankOf(r.array)) + " array " +
                      prog_->arrayDecl(r.array).name);
        return;
    }

    const ArrayDecl &decl = prog_->arrayDecl(r.array);
    MEMORIA_ASSERT(decl.elemSize > 0 && decl.elemSize < 65536,
                   "element size out of tape range");
    uint8_t flags = decl.isRegister ? kFlagRegister : 0;
    uint16_t elem = static_cast<uint16_t>(decl.elemSize);
    int64_t base = static_cast<int64_t>(I.bases_[r.array]);

    // Per-dimension analysis straight off the arena pools: provable
    // bounds and overflow-safe magnitudes for the linearized fast
    // path. Rank is tiny; fixed-size scratch avoids allocation.
    constexpr int kMaxRank = 8;
    int rank = r.subCount;
    bool fastOk = rank <= kMaxRank;
    int64_t stride = 1;
    for (int k = 0; fastOk && k < rank; ++k) {
        const ProgramArena::Sub &sub = arena.subs()[r.firstSub + k];
        if (sub.opaque != kNoArena) {
            fastOk = false;
            break;
        }
        Interval iv;
        if (!(affineInterval(arena, sub.affine, iv) && iv.lo >= 1 &&
              iv.hi <= ext[k]))
            fastOk = false;
        const ProgramArena::Affine &A = arena.affines()[sub.affine];
        if (std::llabs(A.constant) > kLinLimit)
            fastOk = false;
        const ProgramArena::Term *t =
            arena.terms().data() + A.firstTerm;
        for (int32_t i = 0; i < A.termCount; ++i)
            if (std::llabs(t[i].coeff) > kLinLimit)
                fastOk = false;
        if (stride > kLinLimit)
            fastOk = false;
        stride *= ext[k];
    }

    if (fastOk) {
        // Strength reduction: fold the column-major strides into the
        // subscript coefficients. index = sum_k (s_k - 1) * stride_k
        // collapses to one affine expression evaluated per access.
        // Accumulated directly into the tape pools in AffineExpr's
        // canonical form (terms sorted by variable, zero coefficients
        // dropped) so the disassembly reads the same either way.
        int64_t linConst = 0;
        int32_t linVar[kMaxRank * 4];
        int64_t linCoeff[kMaxRank * 4];
        int linTerms = 0;
        bool overflow = false;
        int64_t st = 1;
        for (int k = 0; k < rank; ++k) {
            const ProgramArena::Sub &sub =
                arena.subs()[r.firstSub + k];
            const ProgramArena::Affine &A =
                arena.affines()[sub.affine];
            linConst += (A.constant - 1) * st;
            const ProgramArena::Term *t =
                arena.terms().data() + A.firstTerm;
            for (int32_t i = 0; i < A.termCount; ++i) {
                int64_t c = t[i].coeff * st;
                int j = 0;
                while (j < linTerms && linVar[j] != t[i].var)
                    ++j;
                if (j < linTerms) {
                    linCoeff[j] += c;
                } else if (linTerms <
                           static_cast<int>(sizeof linVar /
                                            sizeof linVar[0])) {
                    linVar[linTerms] = t[i].var;
                    linCoeff[linTerms] = c;
                    ++linTerms;
                } else {
                    overflow = true;
                }
            }
            st *= ext[k];
        }
        if (!overflow) {
            // Canonicalize: sort by variable id, drop zero terms.
            for (int i = 1; i < linTerms; ++i)
                for (int j = i;
                     j > 0 && linVar[j - 1] > linVar[j]; --j) {
                    std::swap(linVar[j - 1], linVar[j]);
                    std::swap(linCoeff[j - 1], linCoeff[j]);
                }
            Aff a;
            a.firstTerm = static_cast<int32_t>(termVar_.size());
            a.constant = linConst;
            int32_t kept = 0;
            for (int i = 0; i < linTerms; ++i) {
                if (linCoeff[i] == 0)
                    continue;
                termVar_.push_back(linVar[i]);
                termCoeff_.push_back(linCoeff[i]);
                ++kept;
            }
            a.termCount = kept;
            affines_.push_back(a);

            ++fastRefs_;
            Instr in;
            in.op = isStore ? Op::StoreFast : Op::LoadFast;
            in.flags = flags;
            in.elem = elem;
            in.a = static_cast<int32_t>(affines_.size() - 1);
            in.b = r.array;
            in.imm = base;
            emit(in, isStore ? -1 : +1, 0);
            return;
        }
    }

    // Guarded path: dimension-by-dimension, in tree-walker order —
    // dimension k is bounds-checked before dimension k+1's (possibly
    // load-streaming) opaque subscript is evaluated.
    ++guardedRefs_;
    Instr open;
    open.op = Op::RefBegin;
    emit(open, 0, +1);
    stride = 1;
    for (int k = 0; k < rank; ++k) {
        const ProgramArena::Sub &sub = arena.subs()[r.firstSub + k];
        Dim d;
        d.extent = ext[k];
        d.stride = stride;
        d.subIndex = k;
        d.array = r.array;
        Instr in;
        if (sub.opaque != kNoArena) {
            compileValue(arena, sub.opaque);
            d.check = true;
            in.op = Op::DimOpaque;
            dims_.push_back(d);
            in.a = static_cast<int32_t>(dims_.size() - 1);
            emit(in, -1, 0);
        } else {
            Interval iv;
            d.affine = addAffine(arena, sub.affine);
            d.check = !(affineInterval(arena, sub.affine, iv) &&
                        iv.lo >= 1 && iv.hi <= ext[k]);
            in.op = Op::DimAffine;
            dims_.push_back(d);
            in.a = static_cast<int32_t>(dims_.size() - 1);
            emit(in, 0, 0);
        }
        stride *= ext[k];
    }
    Instr close;
    close.op = isStore ? Op::StoreEnd : Op::LoadEnd;
    close.flags = flags;
    close.elem = elem;
    close.a = r.array;
    close.imm = base;
    emit(close, isStore ? -1 : +1, -1);
}

void
Tape::faultAt(Interpreter &interp, size_t pc, int lastStmt,
              const std::string &code, const std::string &msg) const
{
    int32_t s = stmtOfPc_[pc];
    interp.curStmt_ = s >= 0 ? s : lastStmt;
    throw interp_detail::Fault{
        Diag::error(code, msg + interp.loopContext())};
}

template <class Emitter>
void
Tape::execute(Interpreter &interp, Emitter &em)
{
    const Instr *code = code_.data();
    int64_t *env = interp.env_.data();
    double *const *data = data_.data();
    ExecStats &stats = interp.stats_;
    double *dstack = dstack_.data();
    int64_t *istack = istack_.data();
    size_t dsp = 0;
    size_t isp = 0;
    int lastStmt = -1;
    size_t pc = 0;

    for (;;) {
        const Instr &in = code[pc];
        switch (in.op) {
          case Op::LoopBegin: {
            Loop &L = loops_[in.a];
            interp.loopStack_.push_back(L.var);
            int64_t lb = evalA(L.lb, env);
            int64_t ub = evalA(L.ub, env);
            // 128-bit span: the trip count is exact even for extreme
            // bound pairs the tree walker would grind through.
            __int128 span = L.step > 0
                                ? static_cast<__int128>(ub) - lb
                                : static_cast<__int128>(lb) - ub;
            int64_t mag = L.step > 0 ? L.step : -L.step;
            if (span < 0) {
                interp.loopStack_.pop_back();
                pc = static_cast<size_t>(in.b) + 1;
                continue;
            }
            L.remaining = static_cast<int64_t>(span / mag) + 1;
            if ((++stats.loopIterations & (kInterpPollStride - 1)) == 0)
                harness::chargeIterations(kInterpPollStride,
                                          "interp.loop");
            env[L.var] = lb;
            ++pc;
            continue;
          }
          case Op::LoopEnd: {
            Loop &L = loops_[in.a];
            if (--L.remaining > 0) {
                if ((++stats.loopIterations & (kInterpPollStride - 1)) ==
                    0)
                    harness::chargeIterations(kInterpPollStride,
                                              "interp.loop");
                env[L.var] += L.step;
                pc = static_cast<size_t>(in.b);
            } else {
                interp.loopStack_.pop_back();
                ++pc;
            }
            continue;
          }
          case Op::LoadFast: {
            int64_t idx = evalA(in.a, env);
            if (!(in.flags & kFlagRegister)) {
                ++stats.memRefs;
                em.access(static_cast<uint64_t>(in.imm) +
                              static_cast<uint64_t>(idx) * in.elem,
                          in.elem, false);
            }
            dstack[dsp++] = data[in.b][idx];
            ++pc;
            continue;
          }
          case Op::StoreFast: {
            int64_t idx = evalA(in.a, env);
            double value = dstack[--dsp];
            if (!(in.flags & kFlagRegister)) {
                ++stats.memRefs;
                em.access(static_cast<uint64_t>(in.imm) +
                              static_cast<uint64_t>(idx) * in.elem,
                          in.elem, true);
            }
            data[in.b][idx] = value;
            ++stats.stmtsExecuted;
            lastStmt = stmtOfPc_[pc];
            ++pc;
            continue;
          }
          case Op::PushConst: {
            double d;
            std::memcpy(&d, &in.imm, sizeof(d));
            dstack[dsp++] = d;
            ++pc;
            continue;
          }
          case Op::PushIndex:
            dstack[dsp++] = static_cast<double>(evalA(in.a, env));
            ++pc;
            continue;
          case Op::Add: {
            double b = dstack[--dsp];
            dstack[dsp - 1] = dstack[dsp - 1] + b;
            ++pc;
            continue;
          }
          case Op::Sub: {
            double b = dstack[--dsp];
            dstack[dsp - 1] = dstack[dsp - 1] - b;
            ++pc;
            continue;
          }
          case Op::Mul: {
            double b = dstack[--dsp];
            dstack[dsp - 1] = dstack[dsp - 1] * b;
            ++pc;
            continue;
          }
          case Op::Div: {
            double b = dstack[--dsp];
            dstack[dsp - 1] = dstack[dsp - 1] / b;
            ++pc;
            continue;
          }
          case Op::Neg:
            dstack[dsp - 1] = -dstack[dsp - 1];
            ++pc;
            continue;
          case Op::Sqrt:
            dstack[dsp - 1] = std::sqrt(dstack[dsp - 1]);
            ++pc;
            continue;
          case Op::Min: {
            double b = dstack[--dsp];
            dstack[dsp - 1] = std::min(dstack[dsp - 1], b);
            ++pc;
            continue;
          }
          case Op::Max: {
            double b = dstack[--dsp];
            dstack[dsp - 1] = std::max(dstack[dsp - 1], b);
            ++pc;
            continue;
          }
          case Op::IMod: {
            int64_t b = std::llround(dstack[--dsp]);
            int64_t a = std::llround(dstack[dsp - 1]);
            if (b == 0)
                faultAt(interp, pc, lastStmt, "interp.mod_zero",
                        "MOD by zero");
            int64_t m = a % b;
            if (m < 0)
                m += std::abs(b);
            dstack[dsp - 1] = static_cast<double>(m);
            ++pc;
            continue;
          }
          case Op::RefBegin:
            istack[isp++] = 0;
            ++pc;
            continue;
          case Op::DimAffine: {
            const Dim &d = dims_[in.a];
            int64_t s = evalA(d.affine, env);
            if (d.check && (s < 1 || s > d.extent))
                faultAt(interp, pc, lastStmt, "interp.oob",
                        "subscript " + std::to_string(d.subIndex + 1) +
                            " = " + std::to_string(s) +
                            " out of bounds 1.." +
                            std::to_string(d.extent) + " on array " +
                            prog_->arrayDecl(d.array).name);
            istack[isp - 1] += (s - 1) * d.stride;
            ++pc;
            continue;
          }
          case Op::DimOpaque: {
            const Dim &d = dims_[in.a];
            int64_t s = std::llround(dstack[--dsp]);
            if (s < 1 || s > d.extent)
                faultAt(interp, pc, lastStmt, "interp.oob",
                        "subscript " + std::to_string(d.subIndex + 1) +
                            " = " + std::to_string(s) +
                            " out of bounds 1.." +
                            std::to_string(d.extent) + " on array " +
                            prog_->arrayDecl(d.array).name);
            istack[isp - 1] += (s - 1) * d.stride;
            ++pc;
            continue;
          }
          case Op::LoadEnd: {
            int64_t idx = istack[--isp];
            if (!(in.flags & kFlagRegister)) {
                ++stats.memRefs;
                em.access(static_cast<uint64_t>(in.imm) +
                              static_cast<uint64_t>(idx) * in.elem,
                          in.elem, false);
            }
            dstack[dsp++] = data[in.a][idx];
            ++pc;
            continue;
          }
          case Op::StoreEnd: {
            int64_t idx = istack[--isp];
            double value = dstack[--dsp];
            if (!(in.flags & kFlagRegister)) {
                ++stats.memRefs;
                em.access(static_cast<uint64_t>(in.imm) +
                              static_cast<uint64_t>(idx) * in.elem,
                          in.elem, true);
            }
            data[in.a][idx] = value;
            ++stats.stmtsExecuted;
            lastStmt = stmtOfPc_[pc];
            ++pc;
            continue;
          }
          case Op::FaultOp: {
            const FaultRec &f = faults_[in.a];
            faultAt(interp, pc, lastStmt, f.code, f.msg);
          }
          case Op::Halt:
            return;
        }
        panic("unhandled tape op");
    }
}

void
Tape::run(Interpreter &interp, MemoryListener *listener)
{
    if (!listener) {
        NullEmitter em;
        execute(interp, em);
        return;
    }
    ListenerEmitter em{listener};
    execute(interp, em);
}

void
Tape::runBatched(Interpreter &interp, AccessBatchSink *sink)
{
    if (batchBuf_.size() < BatchingListener::kDefaultBatch)
        batchBuf_.resize(BatchingListener::kDefaultBatch);
    BufferEmitter em{batchBuf_.data(), sink};
    try {
        execute(interp, em);
    } catch (const interp_detail::Fault &) {
        // Match BatchingListener semantics: the sink sees the stream
        // up to the fault. Cancellation, by contrast, propagates
        // without a flush (same as the tree path).
        em.flush();
        throw;
    }
    em.flush();
}

std::string
Tape::disassemble() const
{
    auto nameOf = [this](VarId v) { return prog_->varName(v); };
    std::ostringstream os;
    os << "tape '" << prog_->name << "': " << code_.size()
       << " instrs, " << loops_.size() << " loops, " << fastRefs_
       << " fast refs, " << guardedRefs_ << " guarded refs\n";
    for (size_t pc = 0; pc < code_.size(); ++pc) {
        const Instr &in = code_[pc];
        os << std::setw(3) << pc << ": ";
        switch (in.op) {
          case Op::Halt:
            os << "halt";
            break;
          case Op::LoopBegin: {
            const Loop &L = loops_[in.a];
            os << "loop.begin " << nameOf(L.var) << " = <"
               << affineExpr(L.lb).str(nameOf) << "> .. <"
               << affineExpr(L.ub).str(nameOf) << "> step " << L.step
               << " end@" << in.b;
            break;
          }
          case Op::LoopEnd:
            os << "loop.end " << nameOf(loops_[in.a].var) << " body@"
               << in.b;
            break;
          case Op::FaultOp:
            os << "fault " << faults_[in.a].code << " \""
               << faults_[in.a].msg << "\"";
            break;
          case Op::PushConst: {
            double d;
            std::memcpy(&d, &in.imm, sizeof(d));
            os << "push.const " << d;
            break;
          }
          case Op::PushIndex:
            os << "push.index <" << affineExpr(in.a).str(nameOf) << ">";
            break;
          case Op::Add: os << "add"; break;
          case Op::Sub: os << "sub"; break;
          case Op::Mul: os << "mul"; break;
          case Op::Div: os << "div"; break;
          case Op::Neg: os << "neg"; break;
          case Op::Sqrt: os << "sqrt"; break;
          case Op::Min: os << "min"; break;
          case Op::Max: os << "max"; break;
          case Op::IMod: os << "imod"; break;
          case Op::RefBegin:
            os << "ref.begin";
            break;
          case Op::DimAffine: {
            const Dim &d = dims_[in.a];
            os << "dim.affine " << prog_->arrayDecl(d.array).name << "#"
               << d.subIndex + 1 << " <" << affineExpr(d.affine).str(nameOf)
               << "> stride " << d.stride
               << (d.check ? " check 1.." : " proven 1..") << d.extent;
            break;
          }
          case Op::DimOpaque: {
            const Dim &d = dims_[in.a];
            os << "dim.opaque " << prog_->arrayDecl(d.array).name << "#"
               << d.subIndex + 1 << " stride " << d.stride
               << " check 1.." << d.extent;
            break;
          }
          case Op::LoadEnd:
            os << "load.end " << prog_->arrayDecl(in.a).name;
            if (in.flags & kFlagRegister)
                os << " reg";
            break;
          case Op::StoreEnd:
            os << "store.end " << prog_->arrayDecl(in.a).name;
            if (in.flags & kFlagRegister)
                os << " reg";
            break;
          case Op::LoadFast:
            os << "load.fast " << prog_->arrayDecl(in.b).name << "[<"
               << affineExpr(in.a).str(nameOf) << ">]";
            if (in.flags & kFlagRegister)
                os << " reg";
            break;
          case Op::StoreFast:
            os << "store.fast " << prog_->arrayDecl(in.b).name << "[<"
               << affineExpr(in.a).str(nameOf) << ">]";
            if (in.flags & kFlagRegister)
                os << " reg";
            break;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace memoria
