/**
 * @file
 * Text front end for the loop-nest language.
 *
 * Parses the Fortran-flavoured surface syntax the pretty printer
 * emits, closing the loop: programs can be written in plain text files,
 * optimized with the CLI, and printed back. The grammar is the subset
 * of Fortran 77 the paper's algorithms operate on:
 *
 *   PROGRAM name
 *     PARAMETER N = 64
 *     REAL*8 A(N,N), X(N)
 *     DO I = 1, N [, step]
 *       A(I,1) = (X(I) + 2.5) * A(I-1,1)
 *     ENDDO
 *   END
 *
 * Expressions support + - * /, unary minus, SQRT/MIN/MAX/MOD, array
 * references and numeric literals. Subscripts written in [brackets]
 * parse as opaque (unanalyzable) subscripts. Purely affine arithmetic
 * over index variables folds into affine Index leaves, so parsing a
 * printed program reaches a print fixpoint.
 *
 * The parser is safe on hostile input: loop nesting and expression
 * nesting are bounded (64 and 256 levels), so deeply nested text
 * produces a ParseError instead of exhausting the stack, and every
 * error carries the line and column of the offending token.
 */

#ifndef MEMORIA_FRONTEND_PARSER_HH
#define MEMORIA_FRONTEND_PARSER_HH

#include <optional>
#include <string>

#include "ir/program.hh"

namespace memoria {

/** A parse failure, with a human-readable location. */
struct ParseError
{
    int line = 0;
    std::string message;
    int col = 0;  ///< 1-based column of the offending token

    /** "line L:C: message" rendering for user-facing reports. */
    std::string str() const;
};

/**
 * Parse one program. Returns the program, or nullopt with `error`
 * filled in (when provided).
 */
std::optional<Program> parseProgram(const std::string &source,
                                    ParseError *error = nullptr);

} // namespace memoria

#endif // MEMORIA_FRONTEND_PARSER_HH
