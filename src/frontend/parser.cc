#include "frontend/parser.hh"

#include <cctype>
#include <cstdlib>
#include <map>
#include <vector>

#include "harness/budget.hh"
#include "harness/fault.hh"
#include "support/logging.hh"

namespace memoria {

namespace {

/** Armable failure point covering the whole front end
 *  (docs/ROBUSTNESS.md, fault-site catalog). */
harness::FaultSite gParseFault("parser.parse", /*supportsDiag=*/true);

// ------------------------------------------------------------- lexer

struct Token
{
    enum class Kind { Ident, Number, Sym, End } kind = Kind::End;
    std::string text;   ///< Ident
    double number = 0;  ///< Number
    bool isInt = false;
    char sym = 0;  ///< Sym
    int line = 1;
    int col = 1;
};

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : src_(src) { advance(); }

    const Token &peek() const { return tok_; }

    Token
    next()
    {
        Token t = tok_;
        advance();
        return t;
    }

    int line() const { return line_; }

  private:
    /** Consume one character, tracking line and column. */
    void
    bump()
    {
        if (src_[pos_] == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        ++pos_;
    }

    void
    advance()
    {
        while (pos_ < src_.size()) {
            char c = src_[pos_];
            if (std::isspace(static_cast<unsigned char>(c))) {
                bump();
            } else if (c == '!') {  // comment to end of line
                while (pos_ < src_.size() && src_[pos_] != '\n')
                    bump();
            } else {
                break;
            }
        }
        tok_ = Token{};
        tok_.line = line_;
        tok_.col = col_;
        if (pos_ >= src_.size()) {
            tok_.kind = Token::Kind::End;
            return;
        }
        char c = src_[pos_];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = pos_;
            while (pos_ < src_.size() &&
                   (std::isalnum(
                        static_cast<unsigned char>(src_[pos_])) ||
                    src_[pos_] == '_'))
                bump();
            tok_.kind = Token::Kind::Ident;
            tok_.text = src_.substr(start, pos_ - start);
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && pos_ + 1 < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
            size_t start = pos_;
            bool isInt = true;
            while (pos_ < src_.size()) {
                char d = src_[pos_];
                if (std::isdigit(static_cast<unsigned char>(d))) {
                    bump();
                } else if (d == '.' || d == 'e' || d == 'E') {
                    isInt = false;
                    bump();
                    if (pos_ < src_.size() &&
                        (src_[pos_] == '+' || src_[pos_] == '-') &&
                        (d == 'e' || d == 'E'))
                        bump();
                } else {
                    break;
                }
            }
            tok_.kind = Token::Kind::Number;
            tok_.number = std::strtod(src_.c_str() + start, nullptr);
            tok_.isInt = isInt;
            return;
        }
        tok_.kind = Token::Kind::Sym;
        tok_.sym = c;
        bump();
    }

    const std::string &src_;
    size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    Token tok_;
};

// ------------------------------------------------------------ parser

std::string
upper(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(
            std::toupper(static_cast<unsigned char>(c)));
    return s;
}

struct Bail
{
    ParseError err;
};

class Parser
{
  public:
    explicit Parser(const std::string &src) : lex_(src) {}

    Program
    run()
    {
        expectKeyword("PROGRAM");
        prog_.name = expectIdent();
        parseDeclarations();
        parseStmtList(prog_.body, {"END"});
        expectKeyword("END");
        int next = 0;
        for (auto &n : prog_.body)
            renumber(*n, next);
        return std::move(prog_);
    }

  private:
    /** Recursion bounds; hostile nesting fails cleanly instead of
     *  overflowing the stack. */
    static constexpr int kMaxLoopDepth = 64;
    static constexpr int kMaxExprDepth = 256;

    [[noreturn]] void
    fail(const std::string &msg)
    {
        throw Bail{{lex_.peek().line, msg, lex_.peek().col}};
    }

    static void
    renumber(Node &n, int &next)
    {
        if (n.isStmt()) {
            n.stmt.id = next++;
            return;
        }
        for (auto &kid : n.body)
            renumber(*kid, next);
    }

    bool
    peekKeyword(const std::string &kw)
    {
        return lex_.peek().kind == Token::Kind::Ident &&
               upper(lex_.peek().text) == kw;
    }

    void
    expectKeyword(const std::string &kw)
    {
        if (!peekKeyword(kw))
            fail("expected " + kw);
        lex_.next();
    }

    std::string
    expectIdent()
    {
        if (lex_.peek().kind != Token::Kind::Ident)
            fail("expected identifier");
        return lex_.next().text;
    }

    void
    expectSym(char c)
    {
        if (lex_.peek().kind != Token::Kind::Sym ||
            lex_.peek().sym != c)
            fail(std::string("expected '") + c + "'");
        lex_.next();
    }

    bool
    acceptSym(char c)
    {
        if (lex_.peek().kind == Token::Kind::Sym &&
            lex_.peek().sym == c) {
            lex_.next();
            return true;
        }
        return false;
    }

    int64_t
    expectInt()
    {
        bool neg = acceptSym('-');
        if (lex_.peek().kind != Token::Kind::Number ||
            !lex_.peek().isInt)
            fail("expected integer");
        int64_t v = static_cast<int64_t>(lex_.next().number);
        return neg ? -v : v;
    }

    // ---- declarations ------------------------------------------

    void
    parseDeclarations()
    {
        for (;;) {
            if (peekKeyword("PARAMETER")) {
                lex_.next();
                std::string name = expectIdent();
                expectSym('=');
                int64_t value = expectInt();
                VarInfo info;
                info.name = name;
                info.kind = VarKind::Param;
                info.paramValue = value;
                info.paramPoly = Poly::sym();
                declareVar(name, std::move(info));
            } else if (peekKeyword("REAL")) {
                lex_.next();
                int elemSize = 8;
                if (acceptSym('*'))
                    elemSize = static_cast<int>(expectInt());
                do {
                    parseArrayDecl(elemSize, false);
                } while (acceptSym(','));
            } else if (peekKeyword("REGISTER")) {
                lex_.next();
                do {
                    parseArrayDecl(8, true);
                } while (acceptSym(','));
            } else {
                return;
            }
        }
    }

    void
    parseArrayDecl(int elemSize, bool isRegister)
    {
        std::string name = expectIdent();
        ArrayDecl decl;
        decl.name = name;
        decl.elemSize = elemSize;
        decl.isRegister = isRegister;
        if (acceptSym('(')) {
            if (!acceptSym(')')) {
                do {
                    decl.extents.push_back(parseAffine());
                } while (acceptSym(','));
                expectSym(')');
            }
        }
        if (arrays_.count(name))
            fail("array '" + name + "' redeclared");
        arrays_[name] = static_cast<ArrayId>(prog_.arrays.size());
        prog_.arrays.push_back(std::move(decl));
    }

    void
    declareVar(const std::string &name, VarInfo info)
    {
        if (vars_.count(name))
            fail("variable '" + name + "' redeclared");
        vars_[name] = static_cast<VarId>(prog_.vars.size());
        prog_.vars.push_back(std::move(info));
    }

    VarId
    loopVarFor(const std::string &name)
    {
        auto it = vars_.find(name);
        if (it != vars_.end()) {
            if (prog_.vars[it->second].kind != VarKind::LoopVar)
                fail("'" + name + "' is not a loop variable");
            return it->second;
        }
        VarInfo info;
        info.name = name;
        info.kind = VarKind::LoopVar;
        declareVar(name, std::move(info));
        return vars_.at(name);
    }

    // ---- statements --------------------------------------------

    void
    parseStmtList(std::vector<NodePtr> &out,
                  const std::vector<std::string> &terminators)
    {
        for (;;) {
            harness::poll("parser.stmt");
            for (const auto &term : terminators)
                if (peekKeyword(term))
                    return;
            if (lex_.peek().kind == Token::Kind::End)
                fail("unexpected end of input");
            if (peekKeyword("DO")) {
                out.push_back(parseLoop());
            } else {
                out.push_back(parseAssign());
            }
        }
    }

    NodePtr
    parseLoop()
    {
        if (loopDepth_ >= kMaxLoopDepth)
            fail("loop nesting exceeds the depth limit of " +
                 std::to_string(kMaxLoopDepth));
        ++loopDepth_;
        expectKeyword("DO");
        VarId var = loopVarFor(expectIdent());
        expectSym('=');
        AffineExpr lb = parseAffine();
        expectSym(',');
        AffineExpr ub = parseAffine();
        int64_t step = 1;
        if (acceptSym(','))
            step = expectInt();
        std::vector<NodePtr> body;
        parseStmtList(body, {"ENDDO"});
        expectKeyword("ENDDO");
        --loopDepth_;
        return Node::makeLoop(var, std::move(lb), std::move(ub), step,
                              std::move(body));
    }

    NodePtr
    parseAssign()
    {
        std::string name = expectIdent();
        ArrayRef lhs = parseRefAfterName(name);
        expectSym('=');
        Statement s;
        s.write = std::move(lhs);
        s.rhs = fold(parseExpr());
        return Node::makeStmt(std::move(s));
    }

    // ---- references and subscripts -----------------------------

    ArrayRef
    parseRefAfterName(const std::string &name)
    {
        auto it = arrays_.find(name);
        if (it == arrays_.end())
            fail("unknown array '" + name + "'");
        ArrayRef ref;
        ref.array = it->second;
        size_t rank = prog_.arrays[it->second].extents.size();
        if (acceptSym('(')) {
            if (!acceptSym(')')) {
                do {
                    ref.subs.push_back(parseSubscript());
                } while (acceptSym(','));
                expectSym(')');
            }
        }
        if (ref.subs.size() != rank)
            fail("array '" + name + "' used with wrong rank");
        return ref;
    }

    Subscript
    parseSubscript()
    {
        if (acceptSym('[')) {
            ValuePtr v = fold(parseExpr());
            expectSym(']');
            return Subscript::makeOpaque(std::move(v));
        }
        ValuePtr v = parseExpr();
        auto aff = tryAffine(v);
        if (!aff)
            fail("subscript is not affine (use [expr] for opaque)");
        return Subscript(*aff);
    }

    AffineExpr
    parseAffine()
    {
        ValuePtr v = parseExpr();
        auto aff = tryAffine(v);
        if (!aff)
            fail("expected an affine expression");
        return *aff;
    }

    // ---- expressions -------------------------------------------

    ValuePtr
    parseExpr()
    {
        if (exprDepth_ >= kMaxExprDepth)
            fail("expression nesting exceeds the depth limit of " +
                 std::to_string(kMaxExprDepth));
        ++exprDepth_;
        ValuePtr lhs = parseTerm();
        for (;;) {
            if (acceptSym('+'))
                lhs = Value::make(ValOp::Add, {lhs, parseTerm()});
            else if (acceptSym('-'))
                lhs = Value::make(ValOp::Sub, {lhs, parseTerm()});
            else
                break;
        }
        --exprDepth_;
        return lhs;
    }

    ValuePtr
    parseTerm()
    {
        ValuePtr lhs = parseFactor();
        for (;;) {
            if (acceptSym('*'))
                lhs = Value::make(ValOp::Mul, {lhs, parseFactor()});
            else if (acceptSym('/'))
                lhs = Value::make(ValOp::Div, {lhs, parseFactor()});
            else
                return lhs;
        }
    }

    ValuePtr
    parseFactor()
    {
        if (acceptSym('-'))
            return Value::make(ValOp::Neg, {parseFactor()});
        if (acceptSym('(')) {
            ValuePtr v = parseExpr();
            expectSym(')');
            return v;
        }
        if (lex_.peek().kind == Token::Kind::Number)
            return Value::makeConst(lex_.next().number);
        if (lex_.peek().kind != Token::Kind::Ident)
            fail("expected expression");

        std::string name = lex_.next().text;
        std::string kw = upper(name);
        if (kw == "SQRT" || kw == "MIN" || kw == "MAX" || kw == "MOD") {
            expectSym('(');
            std::vector<ValuePtr> args;
            args.push_back(parseExpr());
            while (acceptSym(','))
                args.push_back(parseExpr());
            expectSym(')');
            if (kw == "SQRT") {
                if (args.size() != 1)
                    fail("SQRT takes one argument");
                return Value::make(ValOp::Sqrt, std::move(args));
            }
            if (args.size() != 2)
                fail(kw + " takes two arguments");
            ValOp op = kw == "MIN" ? ValOp::Min
                                   : (kw == "MAX" ? ValOp::Max
                                                  : ValOp::IMod);
            return Value::make(op, std::move(args));
        }

        if (arrays_.count(name))
            return Value::makeLoad(parseRefAfterName(name));
        auto it = vars_.find(name);
        if (it != vars_.end())
            return Value::makeIndex(AffineExpr::makeVar(it->second));
        fail("unknown identifier '" + name + "'");
    }

    // ---- affine folding ----------------------------------------

    /** Affine view of a value tree, when one exists: integer
     *  constants, Index leaves, +/-, and multiplication by an
     *  integer constant. */
    std::optional<AffineExpr>
    tryAffine(const ValuePtr &v)
    {
        switch (v->op) {
          case ValOp::Const: {
            double c = v->constant;
            if (c != static_cast<double>(static_cast<int64_t>(c)))
                return std::nullopt;
            return AffineExpr(static_cast<int64_t>(c));
          }
          case ValOp::Index:
            return v->index;
          case ValOp::Neg: {
            auto a = tryAffine(v->kids[0]);
            if (!a)
                return std::nullopt;
            return -*a;
          }
          case ValOp::Add:
          case ValOp::Sub: {
            auto a = tryAffine(v->kids[0]);
            auto b = tryAffine(v->kids[1]);
            if (!a || !b)
                return std::nullopt;
            return v->op == ValOp::Add ? *a + *b : *a - *b;
          }
          case ValOp::Mul: {
            auto a = tryAffine(v->kids[0]);
            auto b = tryAffine(v->kids[1]);
            if (!a || !b)
                return std::nullopt;
            if (a->isConstant())
                return *b * a->constant();
            if (b->isConstant())
                return *a * b->constant();
            return std::nullopt;
          }
          default:
            return std::nullopt;
        }
    }

    /** Collapse affine arithmetic over index variables into single
     *  Index leaves so parse(print(p)) prints identically. */
    ValuePtr
    fold(const ValuePtr &v)
    {
        auto aff = tryAffine(v);
        if (aff && !aff->isConstant() && v->op != ValOp::Index)
            return Value::makeIndex(*aff);
        if (v->kids.empty())
            return v;
        auto out = std::make_shared<Value>();
        out->op = v->op;
        out->constant = v->constant;
        out->index = v->index;
        out->load = v->load;
        out->kids.reserve(v->kids.size());
        for (const auto &kid : v->kids)
            out->kids.push_back(fold(kid));
        return out;
    }

    Lexer lex_;
    Program prog_;
    std::map<std::string, VarId> vars_;
    std::map<std::string, ArrayId> arrays_;
    int loopDepth_ = 0;
    int exprDepth_ = 0;
};

} // namespace

std::string
ParseError::str() const
{
    std::string s = "line " + std::to_string(line);
    if (col > 0)
        s += ":" + std::to_string(col);
    return s + ": " + message;
}

std::optional<Program>
parseProgram(const std::string &source, ParseError *error)
{
    if (std::optional<Diag> injected = gParseFault.fire()) {
        if (error)
            *error = ParseError{0, injected->message, 0};
        return std::nullopt;
    }
    try {
        Parser p(source);
        return p.run();
    } catch (const Bail &b) {
        if (error)
            *error = b.err;
        return std::nullopt;
    }
}

} // namespace memoria
