#include "transform/reverse.hh"

#include "support/logging.hh"

namespace memoria {

void
reverseLoop(Node &loop)
{
    MEMORIA_ASSERT(loop.isLoop(), "reverseLoop needs a loop");
    std::swap(loop.lb, loop.ub);
    loop.step = -loop.step;
}

} // namespace memoria
