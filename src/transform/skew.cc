#include "transform/skew.hh"

#include "ir/walk.hh"
#include "support/logging.hh"

namespace memoria {

void
skewLoop(Node &outer, Node &inner, int64_t factor)
{
    MEMORIA_ASSERT(outer.isLoop() && inner.isLoop(),
                   "skewLoop needs two loops");
    MEMORIA_ASSERT(outer.step == 1 && inner.step == 1,
                   "skewLoop requires unit steps");
    MEMORIA_ASSERT(factor != 0, "zero skew factor is the identity");

    // New index j' = j + f*i runs over shifted bounds; the body sees
    // j = j' - f*i.
    AffineExpr fi = AffineExpr::makeVar(outer.var) * factor;
    for (auto &item : inner.body) {
        substituteVar(*item, inner.var,
                      AffineExpr::makeVar(inner.var) - fi);
    }
    inner.lb = inner.lb + fi;
    inner.ub = inner.ub + fi;
}

} // namespace memoria
