#include "transform/compound.hh"

#include "model/loopcost.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "transform/distribute.hh"

namespace memoria {

const char *
nestStrategyName(const NestReport &rep)
{
    if (rep.usedDistribution)
        return "distribute";
    if (rep.usedFusion)
        return "fuse-all";
    if (rep.usedPermutation)
        return "permute";
    return "none";
}

namespace {

/** Memory-order loop variables of a nest, e.g. "JKI". */
std::string
memoryOrderString(const Program &prog, const NestAnalysis &na)
{
    std::string s;
    for (Node *l : na.memoryOrder())
        s += prog.varName(l->var);
    return s;
}

/**
 * Optimize the nest at ownerBody[index] toward memory order using
 * permutation, then inner fusion (FuseAll), then distribution, and
 * finally recursion into the sub-nests below the perfect chain (the
 * paper's statements each get their best inner loop even when the
 * outer structure is imperfect). Returns the number of sibling slots
 * the nest occupies afterwards; fills `rep` when non-null.
 */
size_t
optimizeStructure(const Program &prog, std::vector<NodePtr> &ownerBody,
                  size_t index, const std::vector<Node *> &enclosing,
                  const ModelParams &params, CompoundResult &result,
                  NestReport *rep, bool isTop = true)
{
    Node *root = ownerBody[index].get();

    // Step 1: permutation of the perfect chain.
    PermuteResult pr;
    {
        NestAnalysis na(prog, root, params, enclosing);
        pr = permuteToMemoryOrder(na, root);
    }
    if (rep) {
        rep->usedPermutation |= pr.changed;
        rep->usedReversal |= pr.usedReversal;
        if (isTop)
            rep->fail = pr.fail;
    }

    // Figure 6's test is whether the nest's most-reuse loop is now
    // innermost — a trivially "sorted" short chain above an imperfect
    // structure does not qualify.
    bool innerPlaced;
    {
        NestAnalysis na(prog, root, params, enclosing);
        innerPlaced =
            pr.achievedMemoryOrder && innermostInMemoryOrder(na);
    }

    size_t slots = 1;
    if (!innerPlaced) {
        // Step 2: fuse all inner loops to enable permutation
        // (Section 4.3.2), with rollback when it does not pay off.
        std::vector<Node *> chain = perfectChain(root);
        Node *deepest = chain.back();
        bool innerAllLoops = !deepest->body.empty();
        for (const auto &kid : deepest->body)
            innerAllLoops = innerAllLoops && kid->isLoop();

        bool fusionEnabled = false;
        if (innerAllLoops && deepest->body.size() > 1) {
            NodePtr snapshot = cloneNode(*root);
            std::vector<Node *> enc = enclosing;
            for (size_t i = 0; i + 1 < chain.size(); ++i)
                enc.push_back(chain[i]);
            if (fuseAllInner(prog, *deepest, enc, params)) {
                NestAnalysis na(prog, root, params, enclosing);
                PermuteResult pr2 = permuteToMemoryOrder(na, root);
                if (pr2.achievedMemoryOrder || pr2.innerInMemoryOrder) {
                    fusionEnabled = true;
                    if (rep) {
                        rep->usedFusion = true;
                        rep->usedPermutation |= pr2.changed;
                        rep->usedReversal |= pr2.usedReversal;
                        if (isTop)
                            rep->fail = pr2.fail;
                    }
                }
            }
            if (!fusionEnabled) {
                ownerBody[index] = std::move(snapshot);
                root = ownerBody[index].get();
            }
        }

        // Step 3: distribution at the deepest enabling level.
        if (!fusionEnabled) {
            DistributeResult dr = distributeForMemoryOrder(
                prog, ownerBody, index, enclosing, params);
            if (dr.distributed) {
                result.distributions += 1;
                result.resultingNests += dr.resultingNests;
                if (rep) {
                    rep->usedDistribution = true;
                    if (isTop)
                        rep->fail = PermuteFail::None;
                }
                if (dr.splitTopLevel)
                    slots = static_cast<size_t>(dr.resultingNests);
            }
        }
    }

    // Step 4: recurse into the sub-nests hanging below each slot's
    // perfect chain, so statements in imperfect structures still get
    // their best inner loop (e.g. the update nest of Gaussian
    // elimination inside the pivot loop).
    for (size_t s = 0; s < slots; ++s) {
        Node *part = ownerBody[index + s].get();
        std::vector<Node *> chain = perfectChain(part);
        Node *deepest = chain.back();
        std::vector<Node *> enc = enclosing;
        for (Node *c : chain)
            enc.push_back(c);
        size_t k = 0;
        while (k < deepest->body.size()) {
            if (deepest->body[k]->isLoop() &&
                loopDepth(*deepest->body[k]) >= 2) {
                k += optimizeStructure(prog, deepest->body, k, enc,
                                       params, result, rep, false);
            } else {
                ++k;
            }
        }
    }
    return slots;
}

/** Top-level per-nest wrapper: gathers the before/after statistics. */
size_t
optimizeNest(const Program &prog, std::vector<NodePtr> &ownerBody,
             size_t index, const std::vector<Node *> &enclosing,
             const ModelParams &params, CompoundResult &result)
{
    Node *root = ownerBody[index].get();
    NestReport rep;
    rep.depth = loopDepth(*root);

    obs::TraceScope span("pass.compound", "nest");
    std::string memOrder;
    {
        NestAnalysis na(prog, root, params, enclosing);
        rep.origCost = nestCost(na);
        rep.idealCost = idealNestCost(na);
        rep.origMemoryOrder = nestInMemoryOrder(na);
        rep.origInnerMemoryOrder = innermostInMemoryOrder(na);
        if (span.active())
            memOrder = memoryOrderString(prog, na);
    }

    size_t slots = optimizeStructure(prog, ownerBody, index, enclosing,
                                     params, result, &rep);

    // Final per-nest statistics over the slot range.
    rep.finalMemoryOrder = true;
    rep.finalInnerMemoryOrder = true;
    rep.finalCost = Poly();
    for (size_t s = 0; s < slots; ++s) {
        Node *part = ownerBody[index + s].get();
        NestAnalysis na(prog, part, params, enclosing);
        rep.finalMemoryOrder &= nestInMemoryOrder(na);
        rep.finalInnerMemoryOrder &= innermostInMemoryOrder(na);
        rep.finalCost += nestCost(na);
    }
    if (rep.finalMemoryOrder)
        rep.fail = PermuteFail::None;

    // Decision provenance: what Compound chose for this nest and why.
    static obs::Counter &cNests =
        obs::counter("pass.compound.nests_total");
    static obs::Counter &cAlready =
        obs::counter("pass.compound.nests_already_in_memory_order");
    static obs::Counter &cPermuted =
        obs::counter("pass.compound.nests_permuted");
    static obs::Counter &cFailed =
        obs::counter("pass.compound.nests_failed");
    ++cNests;
    if (rep.origMemoryOrder)
        ++cAlready;
    else if (rep.finalMemoryOrder)
        ++cPermuted;
    else
        ++cFailed;
    if (rep.usedFusion)
        ++obs::counter("pass.compound.nests_fuse_all");
    if (rep.usedDistribution)
        ++obs::counter("pass.compound.nests_distributed");
    if (rep.usedReversal)
        ++obs::counter("pass.compound.nests_reversed");

    if (span.active()) {
        span.arg("depth", rep.depth);
        span.arg("memory_order", memOrder);
        span.arg("orig_memory_order", rep.origMemoryOrder);
        span.arg("final_memory_order", rep.finalMemoryOrder);
        span.arg("strategy", nestStrategyName(rep));
        span.arg("fail", permuteFailName(rep.fail));
        span.arg("used_reversal", rep.usedReversal);
        span.arg("orig_cost", rep.origCost.str());
        span.arg("final_cost", rep.finalCost.str());
        span.arg("ideal_cost", rep.idealCost.str());
        span.arg("slots", slots);
    }

    result.nests.push_back(std::move(rep));
    return slots;
}

} // namespace

CompoundResult
compoundTransform(Program &prog, const ModelParams &params,
                  bool applyFusion)
{
    CompoundResult result;

    obs::TraceScope span("pass.compound", "program");
    span.arg("program", prog.name);
    obs::ScopedTimer timer(
        obs::statsRegistry().histogram("pass.compound.time_us"));

    for (auto &top : prog.body)
        if (top->isLoop())
            result.totalLoops +=
                static_cast<int>(collectLoops(top.get()).size());

    size_t index = 0;
    while (index < prog.body.size()) {
        Node *n = prog.body[index].get();
        if (!n->isLoop() || loopDepth(*n) < 2) {
            ++index;
            continue;
        }
        ++result.totalNests;
        index += optimizeNest(prog, prog.body, index, {}, params, result);
    }

    // Final pass: fuse adjacent compatible nests (and, through the
    // recursion inside fuseSiblings, the pieces distribution created)
    // when the cost model says temporal locality improves.
    if (applyFusion)
        result.fusion = fuseSiblings(prog, prog.body, {}, params, true);

    if (span.active()) {
        span.arg("total_loops", result.totalLoops);
        span.arg("total_nests", result.totalNests);
        span.arg("distributions", result.distributions);
        span.arg("fusion_candidates", result.fusion.candidates);
        span.arg("fused", result.fusion.fused);
    }
    return result;
}

} // namespace memoria
