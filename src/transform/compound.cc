#include "transform/compound.hh"

#include <utility>

#include "check/equiv.hh"
#include "check/validate.hh"
#include "harness/budget.hh"
#include "harness/fault.hh"
#include "model/loopcost.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "transform/distribute.hh"

namespace memoria {

namespace {

harness::FaultSite gCompoundFault("transform.compound");

std::function<void(std::vector<NodePtr> &, size_t, size_t)>
    gSabotageHook;

} // namespace

void
setCompoundSabotageHook(
    std::function<void(std::vector<NodePtr> &, size_t, size_t)> hook)
{
    gSabotageHook = std::move(hook);
}

const char *
nestStrategyName(const NestReport &rep)
{
    if (rep.usedDistribution)
        return "distribute";
    if (rep.usedFusion)
        return "fuse-all";
    if (rep.usedPermutation)
        return "permute";
    return "none";
}

namespace {

/** Memory-order loop variables of a nest, e.g. "JKI". */
std::string
memoryOrderString(const Program &prog, const NestAnalysis &na)
{
    std::string s;
    for (Node *l : na.memoryOrder())
        s += prog.varName(l->var);
    return s;
}

/**
 * Equivalence protocol for the pipeline guards: try a cheap shrunken
 * size first; the program's own (possibly large) default sizes are the
 * fallback, paid only when shrinking is inconclusive.
 */
EquivOptions
guardEquivOptions()
{
    EquivOptions eo;
    eo.sizes = {7, 0};
    eo.stopAfterConclusiveSize = true;
    return eo;
}

/**
 * Reusable reference/candidate Program buffers for the per-nest
 * verification. The symbol and array tables are copied from the source
 * program once per compoundTransform (on first use) instead of per
 * nest; each nest only swaps the cloned bodies in and out.
 */
struct VerifyScratch
{
    Program refP;
    Program candP;
    bool ready = false;

    /** Prime the tables on first use and clear any previous bodies. */
    void
    prime(const Program &prog)
    {
        if (!ready) {
            refP.vars = prog.vars;
            refP.arrays = prog.arrays;
            candP.vars = prog.vars;
            candP.arrays = prog.arrays;
            ready = true;
        }
        refP.body.clear();
        candP.body.clear();
    }
};

/**
 * Guard a transformation: structural validation of the candidate, then
 * the differential oracle against the reference. Returns the reason
 * the candidate was rejected, or an empty string when it passes.
 */
std::string
verifyAgainst(const Program &ref, const Program &cand, int jobs)
{
    // Verification time accrues to the request's verify stage even
    // though it runs nested inside the optimize stage; the optimize
    // accumulation (harness/batch.cc) subtracts it back out.
    obs::StageTimer stage(&obs::StageTimes::verifyUs);
    std::vector<Diag> diags = validateProgram(cand);
    if (!diags.empty())
        return "IR validation: " + diags.front().str();
    EquivOptions eo = guardEquivOptions();
    eo.jobs = jobs;
    EquivResult eq = checkEquivalence(ref, cand, eo);
    if (!eq.equivalent)
        return eq.detail;
    return {};
}

/**
 * Optimize the nest at ownerBody[index] toward memory order using
 * permutation, then inner fusion (FuseAll), then distribution, and
 * finally recursion into the sub-nests below the perfect chain (the
 * paper's statements each get their best inner loop even when the
 * outer structure is imperfect). Returns the number of sibling slots
 * the nest occupies afterwards; fills `rep` when non-null.
 */
size_t
optimizeStructure(const Program &prog, std::vector<NodePtr> &ownerBody,
                  size_t index, const std::vector<Node *> &enclosing,
                  const ModelParams &params,
                  const CompoundOptions &opts, CompoundResult &result,
                  NestReport *rep, bool isTop = true)
{
    harness::poll("compound.structure");

    Node *root = ownerBody[index].get();

    // Step 1: permutation of the perfect chain.
    PermuteResult pr;
    {
        NestAnalysis na(prog, root, params, enclosing);
        pr = permuteToMemoryOrder(na, root);
    }
    if (rep) {
        rep->usedPermutation |= pr.changed;
        rep->usedReversal |= pr.usedReversal;
        if (isTop)
            rep->fail = pr.fail;
    }

    // Figure 6's test is whether the nest's most-reuse loop is now
    // innermost — a trivially "sorted" short chain above an imperfect
    // structure does not qualify.
    bool innerPlaced;
    {
        NestAnalysis na(prog, root, params, enclosing);
        innerPlaced =
            pr.achievedMemoryOrder && innermostInMemoryOrder(na);
    }

    size_t slots = 1;
    if (!innerPlaced) {
        // Step 2: fuse all inner loops to enable permutation
        // (Section 4.3.2), with rollback when it does not pay off.
        std::vector<Node *> chain = perfectChain(root);
        Node *deepest = chain.back();
        bool innerAllLoops = !deepest->body.empty();
        for (const auto &kid : deepest->body)
            innerAllLoops = innerAllLoops && kid->isLoop();

        bool fusionEnabled = false;
        if (opts.enableFuseAll && innerAllLoops &&
            deepest->body.size() > 1) {
            NodePtr snapshot = cloneNode(*root);
            std::vector<Node *> enc = enclosing;
            for (size_t i = 0; i + 1 < chain.size(); ++i)
                enc.push_back(chain[i]);
            if (fuseAllInner(prog, *deepest, enc, params)) {
                NestAnalysis na(prog, root, params, enclosing);
                PermuteResult pr2 = permuteToMemoryOrder(na, root);
                if (pr2.achievedMemoryOrder || pr2.innerInMemoryOrder) {
                    fusionEnabled = true;
                    if (rep) {
                        rep->usedFusion = true;
                        rep->usedPermutation |= pr2.changed;
                        rep->usedReversal |= pr2.usedReversal;
                        if (isTop)
                            rep->fail = pr2.fail;
                    }
                }
            }
            if (!fusionEnabled) {
                ownerBody[index] = std::move(snapshot);
                root = ownerBody[index].get();
            }
        }

        // Step 3: distribution at the deepest enabling level.
        if (opts.enableDistribution && !fusionEnabled) {
            DistributeResult dr = distributeForMemoryOrder(
                prog, ownerBody, index, enclosing, params);
            if (dr.distributed) {
                result.distributions += 1;
                result.resultingNests += dr.resultingNests;
                if (rep) {
                    rep->usedDistribution = true;
                    if (isTop)
                        rep->fail = PermuteFail::None;
                }
                if (dr.splitTopLevel)
                    slots = static_cast<size_t>(dr.resultingNests);
            }
        }
    }

    // Step 4: recurse into the sub-nests hanging below each slot's
    // perfect chain, so statements in imperfect structures still get
    // their best inner loop (e.g. the update nest of Gaussian
    // elimination inside the pivot loop).
    for (size_t s = 0; s < slots; ++s) {
        Node *part = ownerBody[index + s].get();
        std::vector<Node *> chain = perfectChain(part);
        Node *deepest = chain.back();
        std::vector<Node *> enc = enclosing;
        for (Node *c : chain)
            enc.push_back(c);
        size_t k = 0;
        while (k < deepest->body.size()) {
            if (deepest->body[k]->isLoop() &&
                loopDepth(*deepest->body[k]) >= 2) {
                k += optimizeStructure(prog, deepest->body, k, enc,
                                       params, opts, result, rep,
                                       false);
            } else {
                ++k;
            }
        }
    }
    return slots;
}

/** Top-level per-nest wrapper: gathers the before/after statistics. */
size_t
optimizeNest(const Program &prog, std::vector<NodePtr> &ownerBody,
             size_t index, const std::vector<Node *> &enclosing,
             const ModelParams &params, const CompoundOptions &opts,
             CompoundResult &result, VerifyScratch &scratch)
{
    const bool verify = opts.verify;
    harness::poll("compound.nest");

    Node *root = ownerBody[index].get();
    NestReport rep;
    rep.depth = loopDepth(*root);

    obs::TraceScope span("pass.compound", "nest");
    std::string memOrder;
    {
        NestAnalysis na(prog, root, params, enclosing);
        rep.origCost = nestCost(na);
        rep.idealCost = idealNestCost(na);
        rep.origMemoryOrder = nestInMemoryOrder(na);
        rep.origInnerMemoryOrder = innermostInMemoryOrder(na);
        if (span.active())
            memOrder = memoryOrderString(prog, na);
    }

    NodePtr snapshot;
    int savedDistributions = result.distributions;
    int savedResultingNests = result.resultingNests;
    if (verify)
        snapshot = cloneNode(*root);

    size_t slots = optimizeStructure(prog, ownerBody, index, enclosing,
                                     params, opts, result, &rep);

    if (gSabotageHook)
        gSabotageHook(ownerBody, index, slots);

    if (verify) {
        scratch.prime(prog);
        Program &refP = scratch.refP;
        Program &candP = scratch.candP;
        refP.name = prog.name + "#orig";
        refP.body.push_back(cloneNode(*snapshot));
        candP.name = prog.name + "#opt";
        for (size_t s = 0; s < slots; ++s)
            candP.body.push_back(cloneNode(*ownerBody[index + s]));
        std::string why = verifyAgainst(refP, candP, opts.verifyJobs);
        if (!why.empty()) {
            auto first =
                ownerBody.begin() + static_cast<std::ptrdiff_t>(index);
            ownerBody.erase(first + 1,
                            first + static_cast<std::ptrdiff_t>(slots));
            ownerBody[index] = std::move(snapshot);
            slots = 1;
            rep.rolledBack = true;
            result.failVerify += 1;
            result.distributions = savedDistributions;
            result.resultingNests = savedResultingNests;
            ++obs::counter("pass.compound.nests_verify_failed");
            if (obs::tracingEnabled())
                obs::traceEvent("check", "verify_failed",
                                {{"program", prog.name},
                                 {"strategy", nestStrategyName(rep)},
                                 {"detail", why}});
        }
    }

    // Final per-nest statistics over the slot range.
    rep.finalMemoryOrder = true;
    rep.finalInnerMemoryOrder = true;
    rep.finalCost = Poly();
    for (size_t s = 0; s < slots; ++s) {
        Node *part = ownerBody[index + s].get();
        NestAnalysis na(prog, part, params, enclosing);
        rep.finalMemoryOrder &= nestInMemoryOrder(na);
        rep.finalInnerMemoryOrder &= innermostInMemoryOrder(na);
        rep.finalCost += nestCost(na);
    }
    if (rep.finalMemoryOrder)
        rep.fail = PermuteFail::None;

    // Decision provenance: what Compound chose for this nest and why.
    static obs::Counter &cNests =
        obs::counter("pass.compound.nests_total");
    static obs::Counter &cAlready =
        obs::counter("pass.compound.nests_already_in_memory_order");
    static obs::Counter &cPermuted =
        obs::counter("pass.compound.nests_permuted");
    static obs::Counter &cFailed =
        obs::counter("pass.compound.nests_failed");
    ++cNests;
    if (rep.origMemoryOrder)
        ++cAlready;
    else if (rep.finalMemoryOrder)
        ++cPermuted;
    else
        ++cFailed;
    if (rep.usedFusion)
        ++obs::counter("pass.compound.nests_fuse_all");
    if (rep.usedDistribution)
        ++obs::counter("pass.compound.nests_distributed");
    if (rep.usedReversal)
        ++obs::counter("pass.compound.nests_reversed");

    if (span.active()) {
        span.arg("depth", rep.depth);
        span.arg("memory_order", memOrder);
        span.arg("orig_memory_order", rep.origMemoryOrder);
        span.arg("final_memory_order", rep.finalMemoryOrder);
        span.arg("strategy", nestStrategyName(rep));
        span.arg("rolled_back", rep.rolledBack);
        span.arg("fail", permuteFailName(rep.fail));
        span.arg("used_reversal", rep.usedReversal);
        span.arg("orig_cost", rep.origCost.str());
        span.arg("final_cost", rep.finalCost.str());
        span.arg("ideal_cost", rep.idealCost.str());
        span.arg("slots", slots);
    }

    result.nests.push_back(std::move(rep));
    return slots;
}

} // namespace

CompoundResult
compoundTransform(Program &prog, const ModelParams &params,
                  const CompoundOptions &opts)
{
    CompoundResult result;

    gCompoundFault.fireNoDiag();
    harness::poll("compound.program");

    obs::TraceScope span("pass.compound", "program");
    span.arg("program", prog.name);
    obs::ScopedTimer timer(
        obs::statsRegistry().histogram("pass.compound.time_us"));

    for (auto &top : prog.body)
        if (top->isLoop())
            result.totalLoops +=
                static_cast<int>(collectLoops(top.get()).size());

    VerifyScratch scratch;
    size_t index = 0;
    while (index < prog.body.size()) {
        Node *n = prog.body[index].get();
        if (!n->isLoop() || loopDepth(*n) < 2) {
            ++index;
            continue;
        }
        ++result.totalNests;
        index += optimizeNest(prog, prog.body, index, {}, params, opts,
                              result, scratch);
    }

    // Final pass: fuse adjacent compatible nests (and, through the
    // recursion inside fuseSiblings, the pieces distribution created)
    // when the cost model says temporal locality improves. Verification
    // treats the whole pre-fusion program as the reference, since
    // fusion crosses nest boundaries.
    if (opts.applyFusion) {
        std::vector<NodePtr> snapshot;
        if (opts.verify)
            for (const auto &top : prog.body)
                snapshot.push_back(cloneNode(*top));
        result.fusion = fuseSiblings(prog, prog.body, {}, params, true);
        if (opts.verify && result.fusion.fused > 0) {
            scratch.prime(prog);
            Program &refP = scratch.refP;
            refP.name = prog.name + "#prefuse";
            refP.body = std::move(snapshot);
            std::string why =
                verifyAgainst(refP, prog, opts.verifyJobs);
            if (!why.empty()) {
                prog.body = std::move(refP.body);
                result.fusion.failVerify += 1;
                result.fusion.fused = 0;
                ++obs::counter("pass.compound.fusion_verify_failed");
                if (obs::tracingEnabled())
                    obs::traceEvent("check", "verify_failed",
                                    {{"program", prog.name},
                                     {"strategy", "fuse"},
                                     {"detail", why}});
            }
        }
    }

    if (span.active()) {
        span.arg("total_loops", result.totalLoops);
        span.arg("total_nests", result.totalNests);
        span.arg("distributions", result.distributions);
        span.arg("fusion_candidates", result.fusion.candidates);
        span.arg("fused", result.fusion.fused);
        span.arg("fail_verify",
                 result.failVerify + result.fusion.failVerify);
    }
    return result;
}

CompoundResult
compoundTransform(Program &prog, const ModelParams &params,
                  bool applyFusion)
{
    CompoundOptions opts;
    opts.applyFusion = applyFusion;
    return compoundTransform(prog, params, opts);
}

} // namespace memoria
