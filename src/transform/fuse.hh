/**
 * @file
 * Loop fusion (Section 4.3, Figure 4).
 *
 * Fusion merges adjacent compatible loop nests. It serves two purposes:
 * improving group-temporal locality directly (profitable when the fused
 * LoopCost is lower than the sum of the separate LoopCosts), and fusing
 * all inner loops of an imperfect nest to create a perfect nest that
 * permutation can then reorder (FuseAll, Section 4.3.2).
 *
 * Legality follows [War84]: fusion must not reverse any dependence. We
 * test it constructively — build the fused candidate, recompute
 * dependences, and reject if any constraining edge runs from the second
 * body to the first at (or inside) the fused level.
 */

#ifndef MEMORIA_TRANSFORM_FUSE_HH
#define MEMORIA_TRANSFORM_FUSE_HH

#include <vector>

#include "ir/program.hh"
#include "model/params.hh"

namespace memoria {

/** Counters for Table 2's Loop Fusion columns. */
struct FuseStats
{
    /** Nests that were candidates (member of a compatible adjacent
     *  pair). */
    int candidates = 0;

    /** Nests that were actually fused with one or more others. */
    int fused = 0;

    /** Fusions undone because post-fusion verification failed. */
    int failVerify = 0;

    FuseStats &
    operator+=(const FuseStats &o)
    {
        candidates += o.candidates;
        fused += o.fused;
        failVerify += o.failVerify;
        return *this;
    }
};

/**
 * Header compatibility (Section 4.3.1): equal trip counts and steps.
 * Differing lower bounds are allowed; fusion aligns them by shifting
 * the second nest's index variable.
 */
bool headersCompatible(const Node &a, const Node &b);

/**
 * Merge loop `b` into loop `a` (headers must be compatible): the second
 * body's index variable is renamed/shifted onto the first's and the
 * bodies are concatenated. `b` is consumed.
 */
void mergeLoops(Node &a, NodePtr b);

/**
 * Would fusing adjacent sibling loops a and b reverse a dependence?
 *
 * `enclosing` is the chain of loops around the pair, outermost first
 * (empty at program level); it provides the outer context so that
 * dependences carried by outer loops are attributed correctly.
 */
bool fusionLegal(const Program &prog, Node &a, Node &b,
                 const std::vector<Node *> &enclosing);

/**
 * Profitability per the cost model: LoopCost of the fused loop is
 * strictly lower than the sum of the separate LoopCosts.
 */
bool fusionProfitable(const Program &prog, Node &a, Node &b,
                      const std::vector<Node *> &enclosing,
                      const ModelParams &params);

/**
 * Greedy fusion pass over a sibling list (Figure 4): repeatedly fuse
 * adjacent compatible nests when legal and (if `requireProfit`)
 * profitable, then recurse into fused bodies so compatible nests fuse
 * at every level. Mutates `siblings` in place.
 */
FuseStats fuseSiblings(const Program &prog, std::vector<NodePtr> &siblings,
                       const std::vector<Node *> &enclosing,
                       const ModelParams &params, bool requireProfit,
                       bool countStats = true);

/**
 * FuseAll (Section 4.3.2): fuse *all* the adjacent inner loops of
 * `outer` into a single loop when legal, producing a perfect nest that
 * permutation can handle. Returns true when the body ends up perfect.
 */
bool fuseAllInner(const Program &prog, Node &outer,
                  const std::vector<Node *> &enclosing,
                  const ModelParams &params);

} // namespace memoria

#endif // MEMORIA_TRANSFORM_FUSE_HH
