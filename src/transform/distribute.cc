#include "transform/distribute.hh"

#include <algorithm>
#include <map>
#include <set>

#include "dependence/graph.hh"
#include "dependence/legality.hh"
#include "harness/budget.hh"
#include "harness/fault.hh"
#include "model/loopcost.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "transform/permute.hh"

namespace memoria {

namespace {

harness::FaultSite gDistributeFault("transform.distribute");

/** A loop found at a given level, with the path from the trial root. */
struct LevelLoop
{
    Node *loop = nullptr;
    std::vector<Node *> pathLoops;  ///< loops above it inside the trial
};

void
findLoopsAtLevel(Node *n, int level, std::vector<Node *> &path,
                 std::vector<LevelLoop> &out)
{
    if (!n->isLoop())
        return;
    if (level == 0) {
        out.push_back({n, path});
        return;
    }
    path.push_back(n);
    for (auto &kid : n->body)
        findLoopsAtLevel(kid.get(), level - 1, path, out);
    path.pop_back();
}

void
collectStmtIdsInto(const Node &n, std::set<int> &out)
{
    if (n.isStmt()) {
        out.insert(n.stmt.id);
        return;
    }
    for (const auto &kid : n.body)
        collectStmtIdsInto(*kid, out);
}

/**
 * Partition the body items of `loop` into the finest groups that keep
 * recurrences together, considering only dependences not definitely
 * carried above `loopLevel`. Returns the partitions as lists of item
 * indices in a dependence-respecting order (min-index-first Kahn), or
 * an empty vector when no split is possible.
 */
std::vector<std::vector<int>>
partitionItems(const DependenceGraph &graph, const Node &loop,
               int loopLevel)
{
    int k = static_cast<int>(loop.body.size());
    if (k < 2)
        return {};

    // Map statement ids to body-item indices.
    std::map<int, int> itemOf;
    for (int i = 0; i < k; ++i) {
        std::set<int> ids;
        collectStmtIdsInto(*loop.body[i], ids);
        for (int id : ids)
            itemOf[id] = i;
    }

    // Item-level adjacency from the kept dependences.
    std::vector<std::set<int>> adj(k);
    for (const auto &e : graph.edges()) {
        if (!e.constrains())
            continue;
        auto is = itemOf.find(e.src->id);
        auto id = itemOf.find(e.dst->id);
        if (is == itemOf.end() || id == itemOf.end())
            continue;
        if (definitelyCarriedBefore(e, loopLevel))
            continue;  // enforced by the shared outer loops
        if (is->second != id->second)
            adj[is->second].insert(id->second);
    }

    // Tarjan SCC over the k items.
    std::vector<int> index(k, -1), low(k, 0), comp(k, -1);
    std::vector<bool> onStack(k, false);
    std::vector<int> stack;
    int counter = 0, ncomp = 0;
    std::function<void(int)> dfs = [&](int v) {
        index[v] = low[v] = counter++;
        stack.push_back(v);
        onStack[v] = true;
        for (int w : adj[v]) {
            if (index[w] < 0) {
                dfs(w);
                low[v] = std::min(low[v], low[w]);
            } else if (onStack[w]) {
                low[v] = std::min(low[v], index[w]);
            }
        }
        if (low[v] == index[v]) {
            int w;
            do {
                w = stack.back();
                stack.pop_back();
                onStack[w] = false;
                comp[w] = ncomp;
            } while (w != v);
            ++ncomp;
        }
    };
    for (int v = 0; v < k; ++v)
        if (index[v] < 0)
            dfs(v);

    if (ncomp < 2)
        return {};

    // Kahn's algorithm over the condensation, preferring the component
    // containing the smallest original item index (stable output).
    std::vector<std::vector<int>> members(ncomp);
    for (int v = 0; v < k; ++v)
        members[comp[v]].push_back(v);
    std::vector<std::set<int>> cadj(ncomp);
    std::vector<int> indeg(ncomp, 0);
    for (int v = 0; v < k; ++v) {
        for (int w : adj[v]) {
            if (comp[v] != comp[w] && cadj[comp[v]].insert(comp[w]).second)
                ++indeg[comp[w]];
        }
    }
    auto minItem = [&](int c) { return members[c].front(); };
    std::vector<std::vector<int>> order;
    std::set<std::pair<int, int>> ready;  // (min item, comp)
    for (int c = 0; c < ncomp; ++c)
        if (indeg[c] == 0)
            ready.insert({minItem(c), c});
    while (!ready.empty()) {
        auto [mi, c] = *ready.begin();
        ready.erase(ready.begin());
        order.push_back(members[c]);
        for (int w : cadj[c])
            if (--indeg[w] == 0)
                ready.insert({minItem(w), w});
    }
    MEMORIA_ASSERT(static_cast<int>(order.size()) == ncomp,
                   "condensation is cyclic");
    return order;
}

} // namespace

DistributeResult
distributeForMemoryOrder(const Program &prog,
                         std::vector<NodePtr> &ownerBody, size_t index,
                         const std::vector<Node *> &enclosing,
                         const ModelParams &params)
{
    gDistributeFault.fireNoDiag();
    harness::poll("transform.distribute");

    DistributeResult result;
    Node *root = ownerBody[index].get();
    if (!root->isLoop())
        return result;
    int m = loopDepth(*root);
    if (m < 2)
        return result;

    static obs::Counter &cInvocations =
        obs::counter("pass.distribute.invocations");
    static obs::Counter &cTrials = obs::counter("pass.distribute.trials");
    ++cInvocations;

    // Deepest distributable level first (Figure 5: j = m-1 down to 1,
    // i.e. 0-based loop level m-2 down to 0).
    for (int jz = m - 2; jz >= 0; --jz) {
        // Count candidate loops at this level on the real tree so each
        // gets a fresh trial.
        std::vector<Node *> path;
        std::vector<LevelLoop> realCands;
        findLoopsAtLevel(root, jz, path, realCands);

        for (size_t c = 0; c < realCands.size(); ++c) {
            // Work on a detached clone of the whole nest.
            std::vector<NodePtr> trialTop;
            trialTop.push_back(cloneNode(*root));
            std::vector<Node *> tpath;
            std::vector<LevelLoop> trialCands;
            findLoopsAtLevel(trialTop[0].get(), jz, tpath, trialCands);
            LevelLoop &cand = trialCands[c];

            ++cTrials;
            DependenceGraph graph(prog,
                                  collectStmts(trialTop[0].get()));
            auto parts = partitionItems(graph, *cand.loop, jz);
            if (parts.empty()) {
                if (obs::tracingEnabled()) {
                    obs::traceEvent("pass.distribute", "trial",
                                    {{"level", jz},
                                     {"committed", false},
                                     {"reason", "single_recurrence"}});
                }
                continue;
            }

            // Build one copy of the loop per partition.
            std::vector<NodePtr> copies;
            for (const auto &part : parts) {
                std::vector<NodePtr> body;
                for (int item : part)
                    body.push_back(std::move(cand.loop->body[item]));
                copies.push_back(Node::makeLoop(cand.loop->var,
                                                cand.loop->lb,
                                                cand.loop->ub,
                                                cand.loop->step,
                                                std::move(body)));
            }

            // Splice the copies where the loop was.
            std::vector<Node *> copyPtrs;
            if (jz == 0) {
                trialTop.clear();
                for (auto &cp : copies) {
                    copyPtrs.push_back(cp.get());
                    trialTop.push_back(std::move(cp));
                }
            } else {
                Node *parent = cand.pathLoops.back();
                auto slot = std::find_if(
                    parent->body.begin(), parent->body.end(),
                    [&](const NodePtr &p) { return p.get() == cand.loop; });
                MEMORIA_ASSERT(slot != parent->body.end(),
                               "distributed loop lost its parent");
                size_t pos = slot - parent->body.begin();
                parent->body.erase(slot);
                for (auto &cp : copies) {
                    copyPtrs.push_back(cp.get());
                    parent->body.insert(parent->body.begin() + pos++,
                                        std::move(cp));
                }
            }

            // Permute each resulting nest; success when some partition
            // reaches memory order (whole chain or at least the inner
            // loop, Section 4.4 / 4.5).
            bool achieved = false;
            for (Node *copy : copyPtrs) {
                std::vector<Node *> outer = enclosing;
                for (Node *p : cand.pathLoops)
                    outer.push_back(p);
                NestAnalysis na(prog, copy, params, outer);
                PermuteResult pr = permuteToMemoryOrder(na, copy);
                // Distribution is justified only when it *enabled* a
                // permutation: an untouched partition that was already
                // in memory order does not count.
                if (pr.changed &&
                    (pr.achievedMemoryOrder || pr.innerInMemoryOrder))
                    achieved = true;
            }
            if (!achieved) {
                if (obs::tracingEnabled()) {
                    obs::traceEvent(
                        "pass.distribute", "trial",
                        {{"level", jz},
                         {"partitions", parts.size()},
                         {"committed", false},
                         {"reason", "no_permutation_enabled"}});
                }
                continue;  // trial discarded; try the next candidate
            }

            // Commit the trial.
            result.distributed = true;
            result.resultingNests = static_cast<int>(copyPtrs.size());
            result.memoryOrderAchieved = true;
            result.splitTopLevel = (jz == 0);
            ++obs::counter("pass.distribute.committed");
            obs::counter("pass.distribute.resulting_nests") +=
                static_cast<uint64_t>(copyPtrs.size());
            if (obs::tracingEnabled()) {
                obs::traceEvent("pass.distribute", "trial",
                                {{"level", jz},
                                 {"partitions", parts.size()},
                                 {"committed", true}});
            }
            ownerBody.erase(ownerBody.begin() + index);
            for (size_t t = 0; t < trialTop.size(); ++t)
                ownerBody.insert(ownerBody.begin() + index + t,
                                 std::move(trialTop[t]));
            return result;
        }
    }
    return result;
}

} // namespace memoria
