/**
 * @file
 * Loop tiling (Section 6): strip-mine-and-interchange.
 *
 * The paper identifies the criterion its cost model supplies for tiling:
 * create loop-invariant references with respect to the target loop.
 * Tiling here is the classic transformation — the outermost `bandDepth`
 * loops of a fully permutable perfect band are strip-mined and their
 * tile-controller loops moved outside the band.
 */

#ifndef MEMORIA_TRANSFORM_TILE_HH
#define MEMORIA_TRANSFORM_TILE_HH

#include <vector>

#include "dependence/graph.hh"
#include "ir/program.hh"

namespace memoria {

/**
 * True when the outermost `bandDepth` levels of the nest form a fully
 * permutable band (every dependence component in the band is
 * non-negative), which makes tiling legal.
 */
bool bandFullyPermutable(const std::vector<DepEdge> &edges, int bandDepth);

/**
 * Tile the outermost `bandDepth` loops of the perfect chain rooted at
 * `chainRoot` with square tiles of `tileSize`.
 *
 * Restrictions (sufficient for the benchmarks): the band loops must
 * have step 1 and constant bounds whose trip counts divide evenly by
 * the tile size. Returns false, leaving the nest untouched, when any
 * restriction fails or the band is not permutable.
 */
bool tilePerfectNest(Program &prog, Node *chainRoot, int bandDepth,
                     int64_t tileSize, const std::vector<DepEdge> &edges);

} // namespace memoria

#endif // MEMORIA_TRANSFORM_TILE_HH
