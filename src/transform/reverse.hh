/**
 * @file
 * Loop reversal (Section 4.2).
 *
 * Reversal runs a loop's iterations backwards. It never changes the
 * pattern of reuse, but it can *enable* permutation by flipping the sign
 * of a dependence level; Permute consults it when a desired placement is
 * otherwise illegal.
 */

#ifndef MEMORIA_TRANSFORM_REVERSE_HH
#define MEMORIA_TRANSFORM_REVERSE_HH

#include "ir/program.hh"

namespace memoria {

/** Reverse the iteration direction of a loop in place:
 *  DO I = lb, ub, s becomes DO I = ub, lb, -s. */
void reverseLoop(Node &loop);

} // namespace memoria

#endif // MEMORIA_TRANSFORM_REVERSE_HH
