#include "transform/fuse.hh"

#include <set>

#include "dependence/legality.hh"
#include "harness/budget.hh"
#include "harness/fault.hh"
#include "model/loopcost.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace memoria {

namespace {
harness::FaultSite gFuseFault("transform.fuse");
} // namespace

bool
headersCompatible(const Node &a, const Node &b)
{
    if (!a.isLoop() || !b.isLoop() || a.step != b.step)
        return false;
    return (a.ub - a.lb) == (b.ub - b.lb);
}

namespace {

/** True when a loop in the subtree binds variable v. */
bool
bindsVar(const Node &n, VarId v)
{
    if (n.isLoop()) {
        if (n.var == v)
            return true;
        for (const auto &kid : n.body)
            if (bindsVar(*kid, v))
                return true;
    }
    return false;
}

/**
 * Renaming b's index onto a's must not capture: a.var may not occur —
 * bound or free — inside b's body, and when a shift rewrites b.var the
 * body must not rebind it either.
 */
bool
mergeRenameSafe(const Node &a, const Node &b)
{
    AffineExpr shift = b.lb - a.lb;
    bool needRename = b.var != a.var || !(shift == AffineExpr(0));
    if (!needRename)
        return true;
    for (const auto &item : b.body) {
        if (bindsVar(*item, b.var))
            return false;  // shadowed index: substitution would break
        if (b.var != a.var &&
            (usesVar(*item, a.var) || bindsVar(*item, a.var)))
            return false;  // capture of the new index variable
    }
    return true;
}

} // namespace

void
mergeLoops(Node &a, NodePtr b)
{
    MEMORIA_ASSERT(headersCompatible(a, *b), "merging incompatible loops");
    MEMORIA_ASSERT(mergeRenameSafe(a, *b),
                   "loop merge would capture an index variable");
    AffineExpr shift = b->lb - a.lb;
    bool needRename =
        b->var != a.var || !(shift == AffineExpr(0));
    for (auto &item : b->body) {
        if (needRename) {
            substituteVar(*item, b->var,
                          AffineExpr::makeVar(a.var) + shift);
        }
        a.body.push_back(std::move(item));
    }
}

namespace {

/** Collect the statement ids in a subtree. */
void
collectStmtIds(const Node &n, std::set<int> &out)
{
    if (n.isStmt()) {
        out.insert(n.stmt.id);
        return;
    }
    for (const auto &kid : n.body)
        collectStmtIds(*kid, out);
}

/**
 * Build a detached trial: clones of a and b fused, wrapped in synthetic
 * copies of the enclosing loop headers so dependence levels and
 * variable bindings match the real context.
 */
NodePtr
buildFusedTrial(Node &a, Node &b, const std::vector<Node *> &enclosing)
{
    NodePtr merged = cloneNode(a);
    mergeLoops(*merged, cloneNode(b));
    NodePtr top = std::move(merged);
    for (auto it = enclosing.rbegin(); it != enclosing.rend(); ++it) {
        Node *outer = *it;
        std::vector<NodePtr> body;
        body.push_back(std::move(top));
        top = Node::makeLoop(outer->var, outer->lb, outer->ub,
                             outer->step, std::move(body));
    }
    return top;
}

} // namespace

bool
fusionLegal(const Program &prog, Node &a, Node &b,
            const std::vector<Node *> &enclosing)
{
    if (!headersCompatible(a, b) || !mergeRenameSafe(a, b))
        return false;

    std::set<int> set1, set2;
    collectStmtIds(a, set1);
    collectStmtIds(b, set2);

    NodePtr trial = buildFusedTrial(a, b, enclosing);
    DependenceGraph graph(prog, collectStmts(trial.get()));
    int fusedLevel = static_cast<int>(enclosing.size());

    for (const auto &e : graph.edges()) {
        if (!e.constrains())
            continue;
        if (set2.count(e.src->id) && set1.count(e.dst->id) &&
            !definitelyCarriedBefore(e, fusedLevel))
            return false;
    }
    return true;
}

bool
fusionProfitable(const Program &prog, Node &a, Node &b,
                 const std::vector<Node *> &enclosing,
                 const ModelParams &params)
{
    NodePtr merged = cloneNode(a);
    mergeLoops(*merged, cloneNode(b));

    NestAnalysis fusedNa(prog, merged.get(), params, enclosing);
    Poly fused = fusedNa.loopCost(merged.get());

    NestAnalysis aNa(prog, &a, params, enclosing);
    NestAnalysis bNa(prog, &b, params, enclosing);
    Poly separate = aNa.loopCost(&a) + bNa.loopCost(&b);

    return fused < separate;
}

FuseStats
fuseSiblings(const Program &prog, std::vector<NodePtr> &siblings,
             const std::vector<Node *> &enclosing,
             const ModelParams &params, bool requireProfit,
             bool countStats)
{
    gFuseFault.fireNoDiag();
    harness::poll("transform.fuse");

    FuseStats stats;

    // Candidate counting (Table 2, column C): nests that belong to at
    // least one adjacent compatible pair, before any merging.
    if (countStats) {
        std::set<const Node *> candidateSet;
        for (size_t i = 0; i + 1 < siblings.size(); ++i) {
            if (siblings[i]->isLoop() && siblings[i + 1]->isLoop() &&
                headersCompatible(*siblings[i], *siblings[i + 1])) {
                candidateSet.insert(siblings[i].get());
                candidateSet.insert(siblings[i + 1].get());
            }
        }
        stats.candidates = static_cast<int>(candidateSet.size());
    }

    static obs::Counter &cPairs =
        obs::counter("pass.fuse.pairs_considered");
    static obs::Counter &cIncompatible =
        obs::counter("pass.fuse.rejected_incompatible");
    static obs::Counter &cIllegal =
        obs::counter("pass.fuse.rejected_legality");
    static obs::Counter &cUnprofitable =
        obs::counter("pass.fuse.rejected_profit");
    static obs::Counter &cFused = obs::counter("pass.fuse.fused");

    std::set<const Node *> fusedInto;
    size_t i = 0;
    while (i + 1 < siblings.size()) {
        Node *a = siblings[i].get();
        Node *b = siblings[i + 1].get();
        if (!a->isLoop() || !b->isLoop()) {
            ++i;
            continue;
        }
        ++cPairs;
        // Evaluated stepwise so the rejection reason is observable.
        bool compatible = headersCompatible(*a, *b);
        bool legal = compatible && fusionLegal(prog, *a, *b, enclosing);
        bool canFuse =
            legal && (!requireProfit ||
                      fusionProfitable(prog, *a, *b, enclosing, params));
        if (!canFuse) {
            const char *why = !compatible ? "incompatible"
                              : !legal    ? "dependences"
                                          : "unprofitable";
            ++(!compatible ? cIncompatible
               : !legal    ? cIllegal
                           : cUnprofitable);
            if (obs::tracingEnabled()) {
                obs::traceEvent("pass.fuse", "candidate",
                                {{"level", enclosing.size()},
                                 {"accepted", false},
                                 {"reason", why}});
            }
            ++i;
            continue;
        }
        // `b` disappears into `a`.
        ++cFused;
        if (obs::tracingEnabled()) {
            obs::traceEvent("pass.fuse", "candidate",
                            {{"level", enclosing.size()},
                             {"accepted", true}});
        }
        if (countStats)
            stats.fused += fusedInto.insert(a).second ? 2 : 1;
        mergeLoops(*a, std::move(siblings[i + 1]));
        siblings.erase(siblings.begin() + i + 1);
    }

    // Recurse: fusion at level l+1 inside every remaining loop. Inner
    // merges within a nest we just fused complete that same fusion and
    // are not counted again (the paper counts fused *nests*).
    for (auto &s : siblings) {
        if (!s->isLoop())
            continue;
        std::vector<Node *> inner = enclosing;
        inner.push_back(s.get());
        bool countInner = countStats && !fusedInto.count(s.get());
        stats += fuseSiblings(prog, s->body, inner, params,
                              requireProfit, countInner);
    }
    return stats;
}

bool
fuseAllInner(const Program &prog, Node &outer,
             const std::vector<Node *> &enclosing,
             const ModelParams &params)
{
    if (!outer.isLoop())
        return false;
    if (outer.body.empty())
        return false;

    bool anyLoop = false;
    bool allLoops = true;
    for (const auto &item : outer.body) {
        if (item->isLoop())
            anyLoop = true;
        else
            allLoops = false;
    }
    if (!anyLoop)
        return true;  // statements only: already perfect here
    if (!allLoops)
        return false;  // mixed statements and loops: cannot perfect

    static obs::Counter &cAttempts =
        obs::counter("pass.fuse.fuse_all_attempts");
    static obs::Counter &cMerged =
        obs::counter("pass.fuse.fuse_all_merged");
    ++cAttempts;

    std::vector<Node *> inner = enclosing;
    inner.push_back(&outer);
    while (outer.body.size() > 1) {
        Node &a = *outer.body[0];
        Node &b = *outer.body[1];
        if (!headersCompatible(a, b) || !fusionLegal(prog, a, b, inner)) {
            if (obs::tracingEnabled()) {
                obs::traceEvent(
                    "pass.fuse", "fuse_all",
                    {{"accepted", false},
                     {"reason", headersCompatible(a, b) ? "dependences"
                                                        : "incompatible"}});
            }
            return false;
        }
        ++cMerged;
        mergeLoops(a, std::move(outer.body[1]));
        outer.body.erase(outer.body.begin() + 1);
    }
    return fuseAllInner(prog, *outer.body[0], inner, params);
}

} // namespace memoria
