/**
 * @file
 * Loop permutation into memory order (Section 4.1).
 *
 * Permute ranks the loops of a perfect nest by LoopCost and reorders
 * them so the loop with the most reuse is innermost ("memory order").
 * When memory order is illegal it finds the nearest legal permutation,
 * preferring the most desirable legal inner loop, and may apply loop
 * reversal as an enabler. Both rectangular and triangular bound
 * exchanges are supported; anything else counts as "bounds too complex",
 * the paper's third failure category.
 */

#ifndef MEMORIA_TRANSFORM_PERMUTE_HH
#define MEMORIA_TRANSFORM_PERMUTE_HH

#include <vector>

#include "ir/program.hh"
#include "model/loopcost.hh"

namespace memoria {

/** Why a nest could not be put in memory order. */
enum class PermuteFail
{
    None,          ///< memory order achieved (or already present)
    Dependences,   ///< no legal permutation reaches memory order
    Bounds,        ///< legal by dependences, but bounds too complex
};

/** Printable name of a failure reason ("none"/"dependences"/"bounds"). */
const char *permuteFailName(PermuteFail f);

/** Outcome of one Permute invocation. */
struct PermuteResult
{
    /** The nest's loop order was changed. */
    bool changed = false;

    /** The nest was already fully in memory order. */
    bool alreadyMemoryOrder = false;

    /** The final order is full memory order. */
    bool achievedMemoryOrder = false;

    /** The most desirable inner loop ended up innermost. */
    bool innerInMemoryOrder = false;

    /** The inner loop was already correctly placed beforehand. */
    bool innerAlreadyMemoryOrder = false;

    /** Reversal was applied to enable the permutation. */
    bool usedReversal = false;

    PermuteFail fail = PermuteFail::None;
};

/**
 * Permute the perfect chain starting at `chainRoot` toward memory order.
 *
 * `analysis` must be a NestAnalysis rooted at the same node; it supplies
 * LoopCost, memory order and the dependence edges. The transformation
 * mutates the loop headers in place (node identity of the chain is
 * preserved; headers move between nodes). When `allowReversal` is set,
 * loops may be reversed to enable an otherwise illegal placement.
 */
PermuteResult permuteToMemoryOrder(const NestAnalysis &analysis,
                                   Node *chainRoot,
                                   bool allowReversal = true);

/**
 * Whether the adjacent pair (outer, inner) can exchange bounds, and if
 * so perform it. Rectangular pairs swap headers; triangular pairs
 * (inner bound using the outer variable with coefficient one) use the
 * standard min/max exchange when it simplifies statically.
 */
bool exchangeAdjacent(Node &outer, Node &inner);

/** Dry-run variant of exchangeAdjacent: test only, no mutation. */
bool canExchangeAdjacent(const Node &outer, const Node &inner);

/**
 * Permute the chain into memory order IGNORING dependence legality
 * (bounds exchangeability still applies). This builds the paper's
 * *ideal* program of Section 5.2 — the best locality achievable if
 * correctness could be ignored. Returns true when the order changed.
 */
bool permuteIgnoringLegality(const NestAnalysis &analysis,
                             Node *chainRoot);

/**
 * Apply an explicit permutation to the perfect chain at `chainRoot`
 * (slot i receives the original level perm[i]). No dependence check —
 * callers are responsible for legality. Returns false (nest untouched)
 * when the bounds cannot be exchanged.
 */
bool applyPermutation(Node *chainRoot, const std::vector<int> &perm);

} // namespace memoria

#endif // MEMORIA_TRANSFORM_PERMUTE_HH
