#include "transform/scalar_replace.hh"

#include <algorithm>
#include <vector>

#include "ir/walk.hh"
#include "support/logging.hh"

namespace memoria {

namespace {

/** Rebuild a value tree with loads of `target` redirected to `reg`. */
ValuePtr
redirectLoads(const ValuePtr &val, const ArrayRef &target, ArrayId reg)
{
    if (!val)
        return val;
    if (val->op == ValOp::Load && refsEqual(val->load, target)) {
        ArrayRef r;
        r.array = reg;
        return Value::makeLoad(std::move(r));
    }
    auto out = std::make_shared<Value>();
    out->op = val->op;
    out->constant = val->constant;
    out->index = val->index;
    out->load = val->load;
    out->kids.reserve(val->kids.size());
    for (const auto &kid : val->kids)
        out->kids.push_back(redirectLoads(kid, target, reg));
    return out;
}

struct Promoter
{
    Program &prog;
    ScalarReplaceStats stats;
    int nextId;
    int nextReg = 0;

    void
    visitBody(std::vector<NodePtr> &body)
    {
        for (size_t i = 0; i < body.size(); ++i) {
            if (!body[i]->isLoop())
                continue;
            bool innermost = true;
            for (const auto &kid : body[i]->body)
                innermost = innermost && kid->isStmt();
            if (innermost)
                i += promoteIn(body, i);
            else
                visitBody(body[i]->body);
        }
    }

    /** Promote invariant references in the innermost loop at
     *  body[idx]; returns extra slots inserted after it. */
    size_t
    promoteIn(std::vector<NodePtr> &body, size_t idx)
    {
        Node &loop = *body[idx];

        // Gather reference occurrences.
        struct Occ
        {
            Statement *stmt;
            ArrayRef ref;
            bool isWrite;
        };
        std::vector<Occ> occs;
        for (auto &item : loop.body) {
            Statement &s = item->stmt;
            for (const auto &o : collectRefs(s))
                occs.push_back({&s, *o.ref, o.isWrite});
        }

        // Candidate identity classes: affine, loop-invariant, not
        // already a register.
        std::vector<ArrayRef> classes;
        auto classOf = [&](const ArrayRef &r) {
            for (size_t c = 0; c < classes.size(); ++c)
                if (refsEqual(classes[c], r))
                    return static_cast<int>(c);
            return -1;
        };
        for (const auto &o : occs)
            if (classOf(o.ref) < 0)
                classes.push_back(o.ref);

        size_t inserted = 0;
        for (const auto &cls : classes) {
            if (prog.arrayDecl(cls.array).isRegister || !cls.isAffine())
                continue;
            bool invariant = true;
            for (const auto &s : cls.subs)
                invariant = invariant && !s.affine.uses(loop.var);
            if (!invariant)
                continue;

            // Alias guard: every other reference to the same array must
            // be provably disjoint — some subscript pair differing by a
            // non-zero constant (the ZIV test).
            auto disjoint = [](const ArrayRef &a, const ArrayRef &b) {
                if (a.subs.size() != b.subs.size())
                    return false;
                for (size_t d = 0; d < a.subs.size(); ++d) {
                    if (!a.subs[d].isAffine() || !b.subs[d].isAffine())
                        continue;
                    AffineExpr diff =
                        a.subs[d].affine - b.subs[d].affine;
                    if (diff.isConstant() && diff.constant() != 0)
                        return true;
                }
                return false;
            };
            bool aliased = false;
            bool anyWrite = false;
            for (const auto &o : occs) {
                if (o.ref.array != cls.array)
                    continue;
                if (refsEqual(o.ref, cls)) {
                    anyWrite = anyWrite || o.isWrite;
                    continue;
                }
                if (!disjoint(o.ref, cls)) {
                    aliased = true;
                    break;
                }
            }
            if (aliased)
                continue;

            // Allocate the register and rewrite the loop body.
            ArrayDecl decl;
            decl.name = "R" + std::to_string(nextReg++);
            decl.isRegister = true;
            prog.arrays.push_back(std::move(decl));
            ArrayId reg = static_cast<ArrayId>(prog.arrays.size() - 1);
            ArrayRef regRef;
            regRef.array = reg;

            for (auto &item : loop.body) {
                Statement &s = item->stmt;
                s.rhs = redirectLoads(s.rhs, cls, reg);
                if (refsEqual(s.write, cls))
                    s.write = regRef;
            }

            // Preload before the loop; store back after when written.
            Statement pre;
            pre.id = ++nextId;
            pre.write = regRef;
            pre.rhs = Value::makeLoad(cls);
            body.insert(body.begin() + idx,
                        Node::makeStmt(std::move(pre)));
            ++idx;  // the loop shifted right

            if (anyWrite) {
                Statement post;
                post.id = ++nextId;
                post.write = cls;
                post.rhs = Value::makeLoad(regRef);
                body.insert(body.begin() + idx + 1,
                            Node::makeStmt(std::move(post)));
                ++inserted;
                ++stats.replacedReductions;
            } else {
                ++stats.replacedReads;
            }
            ++inserted;
        }
        return inserted;
    }
};

} // namespace

ScalarReplaceStats
scalarReplace(Program &prog)
{
    Promoter p{prog, {}, maxStmtId(prog), 0};
    p.visitBody(prog.body);
    return p.stats;
}

} // namespace memoria
