#include "transform/permute.hh"

#include <algorithm>
#include <numeric>

#include "dependence/legality.hh"
#include "harness/budget.hh"
#include "harness/fault.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "transform/reverse.hh"

namespace memoria {

namespace {
harness::FaultSite gPermuteFault("transform.permute");
} // namespace

const char *
permuteFailName(PermuteFail f)
{
    switch (f) {
      case PermuteFail::None:
        return "none";
      case PermuteFail::Dependences:
        return "dependences";
      case PermuteFail::Bounds:
        return "bounds";
    }
    return "?";
}

namespace {

/** "2,0,1"-style rendering of a permutation for trace payloads. */
std::string
permString(const std::vector<int> &perm)
{
    std::string s;
    for (size_t i = 0; i < perm.size(); ++i) {
        if (i)
            s += ",";
        s += std::to_string(perm[i]);
    }
    return s;
}

/** A loop header, detached from its tree position. */
struct Header
{
    VarId var = kNoVar;
    AffineExpr lb;
    AffineExpr ub;
    int64_t step = 1;
};

Header
headerOf(const Node &n)
{
    return {n.var, n.lb, n.ub, n.step};
}

void
setHeader(Node &n, const Header &h)
{
    n.var = h.var;
    n.lb = h.lb;
    n.ub = h.ub;
    n.step = h.step;
}

/**
 * Exchange two adjacent headers (hu outer, hv inner) in place.
 * Returns false (leaving both untouched) when the bounds are too
 * complex for a rectangular or triangular exchange.
 */
bool
exchangeHeaders(Header &hu, Header &hv)
{
    int64_t cLo = hv.lb.coeff(hu.var);
    int64_t cHi = hv.ub.coeff(hu.var);

    if (cLo == 0 && cHi == 0) {
        std::swap(hu, hv);
        return true;
    }
    if (hu.step != 1 || hv.step != 1)
        return false;

    if (cHi == 1 && cLo == 0) {
        // Upper-triangular: lbV <= v <= u + k.
        AffineExpr k = hv.ub.withoutVar(hu.var);
        AffineExpr slack = hv.lb - (hu.lb + k);
        if (!slack.isConstant() || slack.constant() < 0)
            return false;
        Header newOuter{hv.var, hv.lb, hu.ub + k, 1};
        Header newInner{hu.var, AffineExpr::makeVar(hv.var) - k, hu.ub,
                        1};
        hu = newOuter;
        hv = newInner;
        return true;
    }
    if (cLo == 1 && cHi == 0) {
        // Lower-triangular: u + k <= v <= ubV.
        AffineExpr k = hv.lb.withoutVar(hu.var);
        AffineExpr slack = (hu.ub + k) - hv.ub;
        if (!slack.isConstant() || slack.constant() < 0)
            return false;
        Header newOuter{hv.var, hu.lb + k, hv.ub, 1};
        Header newInner{hu.var, hu.lb, AffineExpr::makeVar(hv.var) - k,
                        1};
        hu = newOuter;
        hv = newInner;
        return true;
    }
    return false;
}

/**
 * Reorder `headers` so that slot i holds original header perm[i],
 * performing pairwise exchanges. Returns false when any required
 * exchange is too complex (headers left in an unspecified but
 * consistent intermediate state — callers work on copies).
 */
bool
applyHeaderPermutation(std::vector<Header> &headers,
                       const std::vector<int> &perm)
{
    int d = static_cast<int>(headers.size());
    std::vector<int> ids(d);
    std::iota(ids.begin(), ids.end(), 0);

    for (int pos = 0; pos < d; ++pos) {
        int cur = pos;
        while (ids[cur] != perm[pos])
            ++cur;
        // Bubble the wanted header outward to `pos`.
        for (int k = cur; k > pos; --k) {
            if (!exchangeHeaders(headers[k - 1], headers[k]))
                return false;
            std::swap(ids[k - 1], ids[k]);
        }
    }
    return true;
}

/** Permutations of 0..d-1, identity first. */
std::vector<std::vector<int>>
allPermutations(int d)
{
    std::vector<int> p(d);
    std::iota(p.begin(), p.end(), 0);
    std::vector<std::vector<int>> out;
    do {
        out.push_back(p);
    } while (std::next_permutation(p.begin(), p.end()));
    return out;
}

/** Edges with selected original levels reversed (reversal enabling). */
std::vector<DepEdge>
edgesWithReversedLevels(const std::vector<DepEdge> &edges,
                        const std::vector<int> &levels)
{
    std::vector<DepEdge> out = edges;
    for (auto &e : out)
        for (int l : levels)
            if (l < static_cast<int>(e.vec.levels.size()))
                e.vec = e.vec.withLevelReversed(l);
    return out;
}

} // namespace

bool
canExchangeAdjacent(const Node &outer, const Node &inner)
{
    Header hu = headerOf(outer);
    Header hv = headerOf(inner);
    return exchangeHeaders(hu, hv);
}

bool
exchangeAdjacent(Node &outer, Node &inner)
{
    Header hu = headerOf(outer);
    Header hv = headerOf(inner);
    if (!exchangeHeaders(hu, hv))
        return false;
    setHeader(outer, hu);
    setHeader(inner, hv);
    return true;
}

bool
applyPermutation(Node *chainRoot, const std::vector<int> &perm)
{
    std::vector<Node *> chain = perfectChain(chainRoot);
    MEMORIA_ASSERT(perm.size() == chain.size(),
                   "permutation size mismatch");
    std::vector<Header> h;
    for (Node *l : chain)
        h.push_back(headerOf(*l));
    if (!applyHeaderPermutation(h, perm))
        return false;
    for (size_t i = 0; i < chain.size(); ++i)
        setHeader(*chain[i], h[i]);
    return true;
}

bool
permuteIgnoringLegality(const NestAnalysis &analysis, Node *chainRoot)
{
    std::vector<Node *> chain = perfectChain(chainRoot);
    int d = static_cast<int>(chain.size());
    if (d < 2)
        return false;

    std::vector<Node *> mo;
    for (Node *l : analysis.memoryOrder())
        if (std::find(chain.begin(), chain.end(), l) != chain.end())
            mo.push_back(l);

    std::vector<int> target(d);
    for (int i = 0; i < d; ++i) {
        auto it = std::find(chain.begin(), chain.end(), mo[i]);
        target[i] = static_cast<int>(it - chain.begin());
    }
    std::vector<int> identity(d);
    std::iota(identity.begin(), identity.end(), 0);
    if (target == identity)
        return false;

    std::vector<Header> h;
    for (Node *l : chain)
        h.push_back(headerOf(*l));
    if (!applyHeaderPermutation(h, target))
        return false;  // bounds too complex even for the ideal program
    for (int i = 0; i < d; ++i)
        setHeader(*chain[i], h[i]);
    return true;
}

PermuteResult
permuteToMemoryOrder(const NestAnalysis &analysis, Node *chainRoot,
                     bool allowReversal)
{
    gPermuteFault.fireNoDiag();
    harness::poll("transform.permute");

    PermuteResult result;

    std::vector<Node *> chain = perfectChain(chainRoot);
    int d = static_cast<int>(chain.size());
    if (d < 1)
        return result;

    // Memory order restricted to the chain's loops.
    std::vector<Node *> mo;
    for (Node *l : analysis.memoryOrder())
        if (std::find(chain.begin(), chain.end(), l) != chain.end())
            mo.push_back(l);
    MEMORIA_ASSERT(static_cast<int>(mo.size()) == d,
                   "memory order does not cover the chain");

    // Desired permutation: position i takes chain index target[i].
    std::vector<int> target(d);
    std::vector<int> moIndexOf(d);  // chain index -> rank in memory order
    for (int i = 0; i < d; ++i) {
        auto it = std::find(chain.begin(), chain.end(), mo[i]);
        target[i] = static_cast<int>(it - chain.begin());
        moIndexOf[target[i]] = i;
    }

    std::vector<int> identity(d);
    std::iota(identity.begin(), identity.end(), 0);

    result.alreadyMemoryOrder = (target == identity);
    result.innerAlreadyMemoryOrder = (target[d - 1] == d - 1);
    if (result.alreadyMemoryOrder) {
        result.innerInMemoryOrder = true;
        result.achievedMemoryOrder = true;
        return result;
    }

    const auto &edges = analysis.graph().edges();

    std::vector<Header> baseHeaders;
    for (Node *l : chain)
        baseHeaders.push_back(headerOf(*l));

    auto boundsOk = [&](const std::vector<int> &perm) {
        std::vector<Header> h = baseHeaders;
        return applyHeaderPermutation(h, perm);
    };

    // Rank candidate permutations: prefer the most desirable inner
    // loop, then the next position outward, etc. (Section 4.1).
    auto score = [&](const std::vector<int> &perm) {
        std::vector<int> s(d);
        for (int i = 0; i < d; ++i)
            s[i] = moIndexOf[perm[d - 1 - i]];
        return s;
    };

    std::vector<int> best = identity;
    std::vector<int> bestScore = score(identity);
    bool targetLegalByDeps = false;

    static obs::Counter &cInvocations =
        obs::counter("pass.permute.invocations");
    static obs::Counter &cConsidered =
        obs::counter("pass.permute.candidates_considered");
    static obs::Counter &cViable =
        obs::counter("pass.permute.candidates_viable");
    ++cInvocations;

    if (d <= 6) {
        for (const auto &perm : allPermutations(d)) {
            if (perm == identity)
                continue;
            ++cConsidered;
            bool legal = permutationLegal(edges, perm);
            if (legal && perm == target)
                targetLegalByDeps = true;
            bool viable = legal && boundsOk(perm);
            if (obs::tracingEnabled()) {
                obs::traceEvent("pass.permute", "candidate",
                                {{"perm", permString(perm)},
                                 {"target", perm == target},
                                 {"legal_deps", legal},
                                 {"bounds_ok", viable},
                                 {"accepted", viable}});
            }
            if (!viable)
                continue;
            ++cViable;
            auto s = score(perm);
            if (s > bestScore) {
                bestScore = s;
                best = perm;
            }
        }
    }

    // Reversal as an enabler: only chased for the full memory-order
    // target, single reversed loop at a time (the paper found reversal
    // never helped; we keep the capability faithful but narrow).
    std::vector<int> reversedLevels;
    if (allowReversal && best != target) {
        for (int l = 0; l < d && reversedLevels.empty(); ++l) {
            auto mod = edgesWithReversedLevels(edges, {l});
            if (!permutationLegal(mod, target))
                continue;
            std::vector<Header> h = baseHeaders;
            h[l].lb = baseHeaders[l].ub;
            h[l].ub = baseHeaders[l].lb;
            h[l].step = -baseHeaders[l].step;
            if (applyHeaderPermutation(h, target)) {
                reversedLevels = {l};
                best = target;
            }
        }
    }

    if (best == identity) {
        result.fail = targetLegalByDeps ? PermuteFail::Bounds
                                        : PermuteFail::Dependences;
        // Even unchanged, the inner loop may already be the best one.
        result.innerInMemoryOrder = result.innerAlreadyMemoryOrder;
        ++obs::counter(result.fail == PermuteFail::Bounds
                           ? "pass.permute.fail_bounds"
                           : "pass.permute.fail_dependences");
        if (obs::tracingEnabled()) {
            obs::traceEvent("pass.permute", "result",
                            {{"changed", false},
                             {"fail", permuteFailName(result.fail)}});
        }
        return result;
    }

    // Apply: reversals first, then the permutation on real headers.
    std::vector<Header> h = baseHeaders;
    for (int l : reversedLevels) {
        std::swap(h[l].lb, h[l].ub);
        h[l].step = -h[l].step;
        result.usedReversal = true;
    }
    bool ok = applyHeaderPermutation(h, best);
    MEMORIA_ASSERT(ok, "bounds exchange failed after dry run succeeded");
    for (int i = 0; i < d; ++i)
        setHeader(*chain[i], h[i]);

    result.changed = true;
    result.achievedMemoryOrder = (best == target);
    result.innerInMemoryOrder = (best[d - 1] == target[d - 1]);
    if (!result.achievedMemoryOrder) {
        result.fail = targetLegalByDeps ? PermuteFail::Bounds
                                        : PermuteFail::Dependences;
    }

    static obs::Counter &cApplied = obs::counter("pass.permute.applied");
    ++cApplied;
    if (result.usedReversal)
        ++obs::counter("pass.permute.reversals");
    if (obs::tracingEnabled()) {
        obs::traceEvent("pass.permute", "result",
                        {{"changed", true},
                         {"perm", permString(best)},
                         {"achieved_memory_order",
                          result.achievedMemoryOrder},
                         {"inner_in_memory_order",
                          result.innerInMemoryOrder},
                         {"used_reversal", result.usedReversal},
                         {"fail", permuteFailName(result.fail)}});
    }
    return result;
}

} // namespace memoria
