/**
 * @file
 * Unroll-and-jam (register tiling; framework step 3, [CCK88, Car92]).
 *
 * Unrolls an outer loop by a factor and jams the copies into the inner
 * loop body, multiplying the register reuse scalar replacement can
 * harvest. Legality is the strip-interchange condition: no constraining
 * dependence may be reversed when iterations of the outer loop within
 * one strip execute together (conservatively, the outer/inner pair must
 * be interchangeable).
 */

#ifndef MEMORIA_TRANSFORM_UNROLL_JAM_HH
#define MEMORIA_TRANSFORM_UNROLL_JAM_HH

#include "dependence/graph.hh"
#include "ir/program.hh"

namespace memoria {

/**
 * Unroll-and-jam the perfect 2-deep (or deeper) nest at `outer` by
 * `factor`: outer steps by factor, and the innermost body is
 * replicated with the outer index shifted by 0..factor-1.
 *
 * Requirements (returns false, untouched, otherwise): outer step +1,
 * constant-evaluable outer trip divisible by factor, a perfect chain
 * of depth >= 2 below `outer`, and a fully permutable (outer, next)
 * pair per `edges`.
 */
bool unrollAndJam(Program &prog, Node *outer, int64_t factor,
                  const std::vector<DepEdge> &edges);

} // namespace memoria

#endif // MEMORIA_TRANSFORM_UNROLL_JAM_HH
