/**
 * @file
 * The Compound transformation algorithm (Section 4.5, Figure 6).
 *
 * Compound drives permutation, fusion, distribution and reversal to put
 * the loop carrying the most reuse innermost for as many statements as
 * possible: permute into memory order when legal; otherwise fuse all
 * inner loops to create a permutable perfect nest; otherwise distribute
 * at the deepest enabling level and permute the pieces; finally fuse
 * adjacent nests (including the pieces distribution created) to recover
 * group-temporal locality.
 */

#ifndef MEMORIA_TRANSFORM_COMPOUND_HH
#define MEMORIA_TRANSFORM_COMPOUND_HH

#include <functional>
#include <vector>

#include "ir/program.hh"
#include "model/params.hh"
#include "support/poly.hh"
#include "transform/fuse.hh"
#include "transform/permute.hh"

namespace memoria {

/** Per-nest outcome, feeding the Table 2 statistics. */
struct NestReport
{
    int depth = 0;

    bool origMemoryOrder = false;
    bool origInnerMemoryOrder = false;
    bool finalMemoryOrder = false;
    bool finalInnerMemoryOrder = false;

    bool usedPermutation = false;
    bool usedFusion = false;        ///< FuseAll enabled permutation
    bool usedDistribution = false;
    bool usedReversal = false;

    /** Why memory order was missed (when it was). */
    PermuteFail fail = PermuteFail::None;

    /**
     * The transformed nest failed post-transformation verification (IR
     * validation or the differential oracle) and the original was
     * restored. The used* flags above still record what was attempted.
     */
    bool rolledBack = false;

    Poly origCost;
    Poly finalCost;
    Poly idealCost;
};

/**
 * The dominant strategy Compound used on a nest, for provenance
 * reporting: "distribute" > "fuse-all" > "permute" > "none" (fusion and
 * distribution both imply a subsequent permutation attempt).
 */
const char *nestStrategyName(const NestReport &rep);

/** Whole-program outcome of Compound. */
struct CompoundResult
{
    std::vector<NestReport> nests;  ///< one per original depth>=2 nest

    FuseStats fusion;       ///< Table 2: C (candidates) and A (fused)
    int distributions = 0;  ///< Table 2: D
    int resultingNests = 0; ///< Table 2: R

    /** Total loops / nests scanned (depth >= 2 nests only in nests). */
    int totalLoops = 0;
    int totalNests = 0;

    /** Nests rolled back after failing verification (fusion-pass
     *  rollbacks are counted separately in fusion.failVerify). */
    int failVerify = 0;
};

/** Knobs for one Compound run. */
struct CompoundOptions
{
    /**
     * Apply the final profit-driven fusion pass. Turning it off ablates
     * fusion (Section 5.5 measures hit rates with and without it).
     */
    bool applyFusion = true;

    /**
     * Guard every nest transformation (and the final fusion pass) with
     * IR validation plus the differential-equivalence oracle
     * (check/equiv.hh), restoring the original structure when a check
     * fails. Verification never alters the result of a correct
     * transformation — it only converts a miscompile into a no-op.
     */
    bool verify = true;

    /**
     * Enable the FuseAll step (Section 4.3.2: fuse inner loops to
     * create a permutable perfect nest). The degradation ladder
     * (harness/ladder.hh) turns this off on its lower rungs.
     */
    bool enableFuseAll = true;

    /** Enable the distribution step (Section 4.4); see enableFuseAll. */
    bool enableDistribution = true;

    /**
     * Worker threads for the equivalence oracle's seed rounds (see
     * EquivOptions::jobs). Verdicts and counters are identical for
     * every value; >1 only buys wall-clock time on multi-core hosts.
     */
    int verifyJobs = 1;
};

/** Run Compound on a whole program in place. */
CompoundResult compoundTransform(Program &prog, const ModelParams &params,
                                 const CompoundOptions &opts);

/** Legacy form; equivalent to CompoundOptions{applyFusion, true}. */
CompoundResult compoundTransform(Program &prog, const ModelParams &params,
                                 bool applyFusion = true);

/**
 * Test-only fault injection: the hook runs on each nest after Compound
 * transforms it and before verification, so tests can corrupt the nest
 * (e.g. force an illegal interchange) and observe the oracle catch it.
 * `ownerBody[index .. index+slots)` is the transformed nest. Pass
 * nullptr to clear. Not thread-safe; never set outside tests.
 */
void setCompoundSabotageHook(
    std::function<void(std::vector<NodePtr> &ownerBody, size_t index,
                       size_t slots)>
        hook);

} // namespace memoria

#endif // MEMORIA_TRANSFORM_COMPOUND_HH
