#include "transform/tile.hh"

#include "ir/walk.hh"
#include "support/logging.hh"

namespace memoria {

bool
bandFullyPermutable(const std::vector<DepEdge> &edges, int bandDepth)
{
    for (const auto &e : edges) {
        if (!e.constrains())
            continue;
        for (int p = 0;
             p < bandDepth && p < static_cast<int>(e.vec.levels.size());
             ++p) {
            if (e.vec.levels[p].canGT())
                return false;
        }
    }
    return true;
}

bool
tilePerfectNest(Program &prog, Node *chainRoot, int bandDepth,
                int64_t tileSize, const std::vector<DepEdge> &edges)
{
    MEMORIA_ASSERT(tileSize >= 1, "tile size must be positive");
    std::vector<Node *> chain = perfectChain(chainRoot);
    if (bandDepth < 1 || bandDepth > static_cast<int>(chain.size()))
        return false;
    if (!bandFullyPermutable(edges, bandDepth))
        return false;

    // Bounds must be compile-time evaluable: constants or affine in
    // parameters (whose values are known).
    auto evalBound = [&prog](const AffineExpr &e, int64_t *out) {
        for (const auto &[v, c] : e.terms()) {
            (void)c;
            if (prog.varInfo(v).kind != VarKind::Param)
                return false;
        }
        *out = e.eval([&prog](VarId v) {
            return prog.varInfo(v).paramValue;
        });
        return true;
    };

    struct Band
    {
        VarId var;
        int64_t lb, ub;
        VarId ctrl;
    };
    std::vector<Band> band;
    for (int k = 0; k < bandDepth; ++k) {
        Node *l = chain[k];
        int64_t lb = 0, ub = 0;
        if (l->step != 1 || !evalBound(l->lb, &lb) ||
            !evalBound(l->ub, &ub))
            return false;
        if ((ub - lb + 1) % tileSize != 0)
            return false;
        band.push_back({l->var, lb, ub, kNoVar});
    }

    // Fresh tile-controller variables.
    for (auto &b : band) {
        VarInfo info;
        info.name = prog.varName(b.var) + "T";
        info.kind = VarKind::LoopVar;
        prog.vars.push_back(std::move(info));
        b.ctrl = static_cast<VarId>(prog.vars.size() - 1);
    }

    // Rebuild from the inside out: element loops over one tile, then
    // controller loops striding by the tile size.
    std::vector<NodePtr> inner = std::move(chain[bandDepth - 1]->body);
    for (int k = bandDepth - 1; k >= 0; --k) {
        const Band &b = band[k];
        std::vector<NodePtr> body = std::move(inner);
        inner.clear();
        inner.push_back(Node::makeLoop(
            b.var, AffineExpr::makeVar(b.ctrl),
            AffineExpr::makeVar(b.ctrl) + (tileSize - 1), 1,
            std::move(body)));
    }
    for (int k = bandDepth - 1; k >= 0; --k) {
        const Band &b = band[k];
        std::vector<NodePtr> body = std::move(inner);
        inner.clear();
        inner.push_back(Node::makeLoop(b.ctrl, AffineExpr(b.lb),
                                       AffineExpr(b.ub), tileSize,
                                       std::move(body)));
    }

    // Replace the chain root's contents with the new structure.
    Node &top = *inner[0];
    chainRoot->var = top.var;
    chainRoot->lb = top.lb;
    chainRoot->ub = top.ub;
    chainRoot->step = top.step;
    chainRoot->body = std::move(top.body);
    return true;
}

} // namespace memoria
