/**
 * @file
 * Loop skewing.
 *
 * The paper's system implemented skewing and the cost model can drive
 * it, but Wolf's experiments (and the paper's own) found it was never
 * needed for locality, so Compound does not invoke it (Section 2). It
 * is provided as a standalone, fully tested transformation: skewing an
 * inner loop by factor f w.r.t. an outer loop maps iteration (i, j) to
 * (i, j + f*i), turning dependence components (di, dj) into
 * (di, dj + f*di) — always legal, and able to make a band fully
 * permutable (enabling tiling of wavefront codes).
 */

#ifndef MEMORIA_TRANSFORM_SKEW_HH
#define MEMORIA_TRANSFORM_SKEW_HH

#include "ir/program.hh"

namespace memoria {

/**
 * Skew `inner` by `factor` with respect to `outer` (both must be
 * loops, inner nested directly or indirectly in outer, steps +1).
 * The iteration space is relabeled; semantics are always preserved.
 */
void skewLoop(Node &outer, Node &inner, int64_t factor);

} // namespace memoria

#endif // MEMORIA_TRANSFORM_SKEW_HH
