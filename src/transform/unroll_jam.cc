#include "transform/unroll_jam.hh"

#include "dependence/legality.hh"
#include "ir/walk.hh"
#include "support/logging.hh"
#include "transform/tile.hh"

namespace memoria {

bool
unrollAndJam(Program &prog, Node *outer, int64_t factor,
             const std::vector<DepEdge> &edges)
{
    if (factor < 2 || !outer->isLoop() || outer->step != 1)
        return false;
    std::vector<Node *> chain = perfectChain(outer);
    if (chain.size() < 2)
        return false;

    // Outer trip must be a known multiple of the factor.
    auto evalBound = [&prog](const AffineExpr &e, int64_t *out) {
        for (const auto &[v, c] : e.terms()) {
            (void)c;
            if (prog.varInfo(v).kind != VarKind::Param)
                return false;
        }
        *out = e.eval([&prog](VarId v) {
            return prog.varInfo(v).paramValue;
        });
        return true;
    };
    int64_t lb = 0, ub = 0;
    if (!evalBound(outer->lb, &lb) || !evalBound(outer->ub, &ub))
        return false;
    if ((ub - lb + 1) % factor != 0)
        return false;

    // Jamming executes the strip's outer iterations inside the inner
    // loops: the (outer, inner) band must be fully permutable.
    if (!bandFullyPermutable(edges, 2))
        return false;

    // Replicate the innermost body with shifted outer indices; the
    // copies get fresh statement ids.
    Node *innermost = chain.back();
    int nextId = maxStmtId(prog) + 1;
    std::vector<NodePtr> jammed;
    for (int64_t u = 0; u < factor; ++u) {
        for (const auto &item : innermost->body) {
            NodePtr copy = cloneNode(*item);
            if (u > 0) {
                substituteVar(*copy, outer->var,
                              AffineExpr::makeVar(outer->var) + u);
                renumberStmtsFrom(*copy, nextId);
            }
            jammed.push_back(std::move(copy));
        }
    }
    innermost->body = std::move(jammed);
    outer->step = factor;
    return true;
}

} // namespace memoria
