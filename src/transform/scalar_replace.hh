/**
 * @file
 * Scalar replacement (framework step 3, Callahan/Carr/Kennedy [CCK90]).
 *
 * Section 1.1 places register-level reuse after the loop reordering
 * this paper studies, and notes the reordering *improves* scalar
 * replacement's effectiveness [Car92]. This module implements the
 * invariant-reference case: an array reference whose subscripts do not
 * vary with the innermost loop is promoted to a register scalar —
 * preloaded before the loop, used (and for reductions accumulated)
 * inside, and stored back after.
 *
 * The ablation benchmark quantifies the interaction the paper claims:
 * memory ordering first creates the invariant references that scalar
 * replacement then exploits.
 */

#ifndef MEMORIA_TRANSFORM_SCALAR_REPLACE_HH
#define MEMORIA_TRANSFORM_SCALAR_REPLACE_HH

#include "ir/program.hh"

namespace memoria {

/** Outcome counters. */
struct ScalarReplaceStats
{
    int replacedReads = 0;      ///< read-only promotions
    int replacedReductions = 0; ///< read+write promotions
};

/**
 * Apply scalar replacement to every innermost loop of the program.
 *
 * A reference is promoted when (a) none of its subscripts uses the
 * innermost loop's variable (it is loop-invariant), (b) its subscripts
 * are affine, and (c) no *other* reference in the loop touches the
 * same array with different subscripts (conservative alias guard). A
 * promoted reference that is written becomes a register reduction with
 * a store after the loop.
 */
ScalarReplaceStats scalarReplace(Program &prog);

} // namespace memoria

#endif // MEMORIA_TRANSFORM_SCALAR_REPLACE_HH
