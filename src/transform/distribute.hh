/**
 * @file
 * Loop distribution (Section 4.4, Figure 5).
 *
 * Distribution splits the body of a loop into multiple loops with
 * identical headers, keeping every recurrence (dependence cycle) within
 * one partition. Memoria uses it purely as an enabler: a nest that
 * cannot be permuted into memory order is distributed at the deepest
 * possible level, and the resulting finer nests are permuted
 * individually (the Cholesky example of Figure 7).
 */

#ifndef MEMORIA_TRANSFORM_DISTRIBUTE_HH
#define MEMORIA_TRANSFORM_DISTRIBUTE_HH

#include <vector>

#include "ir/program.hh"
#include "model/params.hh"

namespace memoria {

/** Outcome of one Distribute invocation. */
struct DistributeResult
{
    /** Distribution was performed. */
    bool distributed = false;

    /** Number of nests the distributed loop became (Table 2, R). */
    int resultingNests = 0;

    /** Some resulting nest reached (or improved toward) memory order. */
    bool memoryOrderAchieved = false;

    /** The distributed loop was the nest root (the copies are now
     *  siblings in the owner body). */
    bool splitTopLevel = false;
};

/**
 * Try to enable memory order for the nest at ownerBody[index] through
 * the minimal distribution (Figure 5): test the deepest loop level
 * first, working outward; commit the first distribution for which some
 * resulting partition can be permuted with its inner loop in memory
 * order. The resulting nests are permuted as part of the commit.
 *
 * `enclosing` is the loop context around ownerBody (outermost first).
 */
DistributeResult
distributeForMemoryOrder(const Program &prog,
                         std::vector<NodePtr> &ownerBody, size_t index,
                         const std::vector<Node *> &enclosing,
                         const ModelParams &params);

} // namespace memoria

#endif // MEMORIA_TRANSFORM_DISTRIBUTE_HH
