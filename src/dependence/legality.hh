/**
 * @file
 * Dependence-based legality tests for the loop transformations.
 *
 * Legality follows the classic rules the paper builds on: a permutation
 * is legal when every permuted dependence vector stays lexicographically
 * non-negative; reversal is legal when dependences remain carried on
 * outer loops; distribution must keep recurrences (dependence cycles)
 * within one partition; fusion must not reverse any inter-nest
 * dependence [War84].
 */

#ifndef MEMORIA_DEPENDENCE_LEGALITY_HH
#define MEMORIA_DEPENDENCE_LEGALITY_HH

#include <vector>

#include "dependence/graph.hh"

namespace memoria {

/**
 * True when permuting the outermost `depth` levels of a perfect nest by
 * `perm` (out[i] = original level perm[i]) keeps every constraining
 * dependence lexicographically non-negative.
 */
bool permutationLegal(const std::vector<DepEdge> &edges,
                      const std::vector<int> &perm);

/**
 * True when the partial outer-to-inner placement `prefix` (original
 * level indices) can still be completed into a legal permutation: no
 * dependence can become negative within the placed prefix.
 */
bool prefixFeasible(const std::vector<DepEdge> &edges,
                    const std::vector<int> &prefix);

/**
 * True when reversing the iteration direction of level `level` keeps
 * every constraining dependence lexicographically non-negative.
 */
bool reversalLegal(const std::vector<DepEdge> &edges, int level);

/**
 * True when the edge is definitely carried at a level shallower than
 * `level` (0-based) — such edges are dropped when building the
 * recurrence graph for distribution of the loop at `level`.
 */
bool definitelyCarriedBefore(const DepEdge &edge, int level);

} // namespace memoria

#endif // MEMORIA_DEPENDENCE_LEGALITY_HH
