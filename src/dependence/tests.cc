#include "dependence/tests.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <numeric>
#include <optional>
#include <string>
#include <unordered_map>

#include "harness/fault.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace memoria {

namespace {

harness::FaultSite gDepFault("dependence.vectors");

constexpr double kInf = std::numeric_limits<double>::infinity();

/** One common loop shared by the two references. */
struct CommonLoop
{
    const Node *loop = nullptr;
    int64_t step = 1;
};

/** Linear form of (subscriptA - subscriptB) for one dimension. */
struct DimForm
{
    /** coeff of the common loop var in A and in B, per common level. */
    std::vector<std::pair<int64_t, int64_t>> common;
    /** private (non-common) loop vars: (loop node, coeff, depth). */
    struct Priv
    {
        const Node *loop;
        int64_t coeff;
        bool sideA;
        int depth;  ///< position in the owning reference's loop list
    };
    std::vector<Priv> priv;
    /**
     * Symbolic terms: parameters and loop variables defined outside
     * the analyzed scope, with their combined (A minus B) coefficient.
     * Both instances see the same value, so equal coefficients have
     * already cancelled.
     */
    std::vector<std::pair<VarId, int64_t>> syms;
    /** constantA - constantB. */
    int64_t cdiff = 0;

    bool
    usesCommonVars() const
    {
        for (const auto &[a, b] : common)
            if (a != 0 || b != 0)
                return true;
        return false;
    }

    bool
    usesAnyVar() const
    {
        return usesCommonVars() || !priv.empty() || !syms.empty();
    }

    /**
     * Strong SIV: exactly one common level carries equal non-zero
     * coefficients and nothing else appears. Returns the level, or -1.
     */
    int
    strongSivLevel() const
    {
        if (!syms.empty() || !priv.empty())
            return -1;
        int level = -1;
        for (size_t l = 0; l < common.size(); ++l) {
            const auto &[a, b] = common[l];
            if (a == 0 && b == 0)
                continue;
            if (level >= 0 || a != b || a == 0)
                return -1;
            level = static_cast<int>(l);
        }
        return level;
    }
};

/**
 * Feasibility engine for one direction vector: substitute sigma
 * relations (unification for '=', a bounded delta symbol for '<'/'>')
 * and then eliminate loop variables innermost-first through their
 * affine bounds, yielding a numeric range for the subscript difference.
 * Correlated (triangular) bounds are handled exactly because a
 * variable's bound expression substitutes in terms of the *same
 * instance's* outer variables.
 */
class SigmaRange
{
  public:
    /** Symbolic variable identity: a loop instance, a delta symbol for
     *  one level, or a scope-invariant symbol (parameter or
     *  out-of-scope loop variable — same value for both instances). */
    struct Key
    {
        enum class Kind { Loop, Delta, Sym } kind;
        const Node *loop = nullptr;  ///< Loop
        bool sideA = true;           ///< Loop: which instance
        int level = -1;              ///< Delta
        VarId var = kNoVar;          ///< Sym
        int depth = 0;               ///< Loop: elimination priority

        bool
        operator<(const Key &o) const
        {
            if (kind != o.kind)
                return kind < o.kind;
            if (kind == Kind::Loop)
                return std::tie(loop, sideA) < std::tie(o.loop, o.sideA);
            if (kind == Kind::Delta)
                return level < o.level;
            return var < o.var;
        }
    };

    using LinForm = std::map<Key, int64_t>;

    SigmaRange(const Program &prog, const std::vector<CommonLoop> &common,
               const std::vector<Node *> &loopsA,
               const std::vector<Node *> &loopsB,
               const std::vector<Dir> &sigma)
        : prog_(prog), common_(common), loopsA_(loopsA), loopsB_(loopsB),
          sigma_(sigma)
    {
    }

    /** Can the dimension's difference be zero under sigma? */
    bool
    feasible(const DimForm &d)
    {
        LinForm base;
        double lo = static_cast<double>(d.cdiff);
        double hi = lo;
        for (const auto &[v, c] : d.syms) {
            Key k;
            k.kind = Key::Kind::Sym;
            k.var = v;
            base[k] += c;
            if (base[k] == 0)
                base.erase(k);
        }
        // Common levels: aA*iA - aB*iB with the sigma substitution.
        for (size_t l = 0; l < common_.size(); ++l) {
            auto [aA, aB] = d.common[l];
            addLoopTerm(base, common_[l].loop, true, aA,
                        static_cast<int>(l));
            if (aB != 0) {
                if (sigma_[l] == DirEQ) {
                    addLoopTerm(base, common_[l].loop, true, -aB,
                                static_cast<int>(l));
                } else {
                    // iB = iA + delta_l.
                    addLoopTerm(base, common_[l].loop, true, -aB,
                                static_cast<int>(l));
                    Key dk;
                    dk.kind = Key::Kind::Delta;
                    dk.level = static_cast<int>(l);
                    base[dk] -= aB;
                }
            }
        }
        for (const auto &p : d.priv)
            addLoopTerm(base, p.loop, p.sideA, p.coeff, p.depth);

        LinForm loForm = base, hiForm = base;
        // Each side that cannot be fully resolved is unbounded in its
        // own direction; the other side may still prove independence.
        if (!eliminate(loForm, /*wantHi=*/false, lo))
            lo = -kInf;
        if (!eliminate(hiForm, /*wantHi=*/true, hi))
            hi = kInf;
        return lo <= 0.0 && 0.0 <= hi;
    }

  private:
    void
    addLoopTerm(LinForm &f, const Node *loop, bool sideA, int64_t coeff,
                int depth)
    {
        if (coeff == 0)
            return;
        Key k;
        k.kind = Key::Kind::Loop;
        k.loop = loop;
        k.sideA = sideA;
        k.depth = depth;
        f[k] += coeff;
        if (f[k] == 0)
            f.erase(k);
    }

    /** Interval of the delta symbol for one level (iB - iA in values). */
    void
    deltaRange(int level, double &dlo, double &dhi) const
    {
        int64_t step = common_[level].step;
        Dir dir = sigma_[level];
        // iterA < iterB means iB - iA >= step (step>0) or <= step (<0).
        if (dir == DirLT) {
            if (step > 0) {
                dlo = static_cast<double>(step);
                dhi = kInf;
            } else {
                dlo = -kInf;
                dhi = static_cast<double>(step);
            }
        } else {  // DirGT
            if (step > 0) {
                dlo = -kInf;
                dhi = static_cast<double>(-step);
            } else {
                dlo = static_cast<double>(-step);
                dhi = kInf;
            }
        }
        // Clamp by the loop's numeric span when known.
        double span = loopSpan(common_[level].loop);
        if (std::isfinite(span)) {
            dlo = std::max(dlo, -span);
            dhi = std::min(dhi, span);
        }
    }

    /** Numeric width of a loop's value range (may be +inf). */
    double
    loopSpan(const Node *loop) const
    {
        double llo, lhi;
        if (!numericRange(loop, llo, lhi))
            return kInf;
        return lhi - llo;
    }

    /** Numeric value range of a loop variable, via recursive affine
     *  interval arithmetic with parameters at their bound values. */
    bool
    numericRange(const Node *loop, double &lo, double &hi) const
    {
        auto it = rangeCache_.find(loop);
        if (it != rangeCache_.end()) {
            lo = it->second.first;
            hi = it->second.second;
            return std::isfinite(lo) || std::isfinite(hi);
        }
        rangeCache_[loop] = {-kInf, kInf};  // cycle guard
        double l1, h1, l2, h2;
        bool ok = exprRange(loop->lb, loop, l1, h1) &&
                  exprRange(loop->ub, loop, l2, h2);
        if (ok) {
            lo = std::min(l1, l2);
            hi = std::max(h1, h2);
        } else {
            lo = -kInf;
            hi = kInf;
        }
        rangeCache_[loop] = {lo, hi};
        return ok;
    }

    bool
    exprRange(const AffineExpr &e, const Node *context, double &lo,
              double &hi) const
    {
        lo = hi = static_cast<double>(e.constant());
        for (const auto &[v, c] : e.terms()) {
            double vlo, vhi;
            if (prog_.varInfo(v).kind == VarKind::Param) {
                vlo = vhi =
                    static_cast<double>(prog_.varInfo(v).paramValue);
            } else {
                const Node *def = findDefiningLoop(v, context);
                if (!def || !numericRange(def, vlo, vhi))
                    return false;
            }
            double cd = static_cast<double>(c);
            if (c >= 0) {
                lo += cd * vlo;
                hi += cd * vhi;
            } else {
                lo += cd * vhi;
                hi += cd * vlo;
            }
        }
        return true;
    }

    /** The loop defining variable v, searched in both contexts. */
    const Node *
    findDefiningLoop(VarId v, const Node *ignore) const
    {
        for (const auto &cl : common_)
            if (cl.loop != ignore && cl.loop->var == v)
                return cl.loop;
        for (const Node *l : loopsA_)
            if (l != ignore && l->var == v)
                return l;
        for (const Node *l : loopsB_)
            if (l != ignore && l->var == v)
                return l;
        return nullptr;
    }

    /** Side-respecting defining loop of a bound variable; parameters
     *  and out-of-scope loop variables become shared symbols. */
    bool
    resolveBoundVar(VarId v, bool sideA, Key &out) const
    {
        if (prog_.varInfo(v).kind != VarKind::Param) {
            const auto &loops = sideA ? loopsA_ : loopsB_;
            for (size_t i = 0; i < loops.size(); ++i) {
                if (loops[i]->var == v) {
                    out.kind = Key::Kind::Loop;
                    out.loop = loops[i];
                    out.sideA = sideA;
                    out.depth = static_cast<int>(i);
                    return true;
                }
            }
        }
        out.kind = Key::Kind::Sym;
        out.var = v;
        return true;
    }

    /** Level of a loop node among the common loops, or -1. */
    int
    commonLevelOf(const Node *loop) const
    {
        for (size_t l = 0; l < common_.size(); ++l)
            if (common_[l].loop == loop)
                return static_cast<int>(l);
        return -1;
    }

    /**
     * Substitute variable key `k` in `f` by one of its bound
     * expressions, folding the sigma relation for B-side common
     * variables. Returns false on an unresolvable bound.
     */
    bool
    substituteBound(LinForm &f, const Key &k, bool useUpper,
                    double &acc)
    {
        int64_t coeff = f[k];
        f.erase(k);
        const AffineExpr &bound = useUpper ? k.loop->ub : k.loop->lb;
        acc += static_cast<double>(coeff * bound.constant());
        for (const auto &[v, c] : bound.terms()) {
            Key ref;
            if (!resolveBoundVar(v, k.sideA, ref))
                return false;
            int64_t combined = coeff * c;
            if (ref.kind == Key::Kind::Sym) {
                f[ref] += combined;
                if (f[ref] == 0)
                    f.erase(ref);
                continue;
            }
            // A B-side common variable folds through sigma.
            int lvl = ref.sideA ? -1 : commonLevelOf(ref.loop);
            if (!ref.sideA && lvl >= 0) {
                Key aSide = ref;
                aSide.sideA = true;
                aSide.depth = lvl;
                f[aSide] += combined;
                if (f[aSide] == 0)
                    f.erase(aSide);
                if (sigma_[lvl] != DirEQ) {
                    Key dk;
                    dk.kind = Key::Kind::Delta;
                    dk.level = lvl;
                    f[dk] += combined;
                    if (f[dk] == 0)
                        f.erase(dk);
                }
                continue;
            }
            // Normalize A-side common variables' depth.
            if (ref.sideA) {
                int clvl = commonLevelOf(ref.loop);
                if (clvl >= 0)
                    ref.depth = clvl;
            }
            f[ref] += combined;
            if (f[ref] == 0)
                f.erase(ref);
        }
        return true;
    }

    /**
     * Eliminate every loop variable from `f`, innermost first, then
     * fold delta symbols and parameters into `acc`. Maximizes when
     * wantHi, minimizes otherwise. Returns false when a bound cannot
     * be resolved (caller assumes feasibility).
     */
    bool
    eliminate(LinForm &f, bool wantHi, double &acc)
    {
        int guard = 0;
        for (;;) {
            if (++guard > 256)
                return false;
            // Deepest loop variable present.
            const Key *pick = nullptr;
            for (const auto &[k, c] : f) {
                if (k.kind != Key::Kind::Loop)
                    continue;
                if (!pick || k.depth > pick->depth ||
                    (k.depth == pick->depth && k < *pick))
                    pick = &k;
            }
            if (!pick)
                break;
            Key k = *pick;
            int64_t c = f[k];
            bool atValueMax = wantHi ? (c > 0) : (c < 0);
            // For a negative-step loop the DO's first bound (lb) is the
            // value maximum and its second (ub) the minimum.
            bool useUpper =
                k.loop->step > 0 ? atValueMax : !atValueMax;
            if (!substituteBound(f, k, useUpper, acc))
                return false;
        }
        for (const auto &[k, c] : f) {
            if (k.kind == Key::Kind::Sym) {
                if (prog_.varInfo(k.var).kind == VarKind::Param) {
                    acc += static_cast<double>(c) *
                           static_cast<double>(
                               prog_.varInfo(k.var).paramValue);
                    continue;
                }
                // An out-of-scope loop variable with an uncancelled
                // coefficient: its value is unknown -> unbounded.
                return false;
            }
            MEMORIA_ASSERT(k.kind == Key::Kind::Delta,
                           "loop variable survived elimination");
            double dlo, dhi;
            deltaRange(k.level, dlo, dhi);
            double cd = static_cast<double>(c);
            double v = (wantHi == (cd > 0)) ? dhi : dlo;
            acc += cd * v;
            if (!std::isfinite(acc))
                return false;  // unbounded: assume feasible
        }
        return true;
    }

    const Program &prog_;
    const std::vector<CommonLoop> &common_;
    const std::vector<Node *> &loopsA_;
    const std::vector<Node *> &loopsB_;
    const std::vector<Dir> &sigma_;
    mutable std::map<const Node *, std::pair<double, double>> rangeCache_;
};

bool
isCommonVar(const std::vector<CommonLoop> &common, VarId v, size_t *level)
{
    for (size_t l = 0; l < common.size(); ++l) {
        if (common[l].loop->var == v) {
            *level = l;
            return true;
        }
    }
    return false;
}

int
findPrivateLoopDepth(const std::vector<Node *> &loops, size_t commonCount,
                     VarId v, const Node **out)
{
    for (size_t i = commonCount; i < loops.size(); ++i) {
        if (loops[i]->var == v) {
            *out = loops[i];
            return static_cast<int>(i);
        }
    }
    return -1;
}

/** Build the linear form of fA - fB for one subscript dimension. */
DimForm
buildDimForm(const Program &prog, const AffineExpr &fA,
             const std::vector<Node *> &loopsA, const AffineExpr &fB,
             const std::vector<Node *> &loopsB,
             const std::vector<CommonLoop> &common)
{
    DimForm d;
    d.common.assign(common.size(), {0, 0});
    d.cdiff = fA.constant() - fB.constant();

    // A variable is "symbolic" for this pair when it is a parameter or
    // a loop variable defined outside the analyzed scope: both hold the
    // same value for the two instances, so equal coefficients cancel.
    auto isSymbolic = [&](const std::vector<Node *> &loops, VarId v) {
        if (prog.varInfo(v).kind == VarKind::Param)
            return true;
        size_t level = 0;
        const Node *dummy = nullptr;
        return !isCommonVar(common, v, &level) &&
               findPrivateLoopDepth(loops, common.size(), v, &dummy) < 0;
    };

    auto classify = [&](const AffineExpr &f,
                        const std::vector<Node *> &loops, bool isA) {
        for (const auto &[v, c] : f.terms()) {
            size_t level = 0;
            if (isSymbolic(loops, v))
                continue;  // handled below
            if (isCommonVar(common, v, &level)) {
                if (isA)
                    d.common[level].first += c;
                else
                    d.common[level].second += c;
                continue;
            }
            const Node *priv = nullptr;
            int depth =
                findPrivateLoopDepth(loops, common.size(), v, &priv);
            d.priv.push_back({priv, isA ? c : -c, isA, depth});
        }
    };
    classify(fA, loopsA, true);
    classify(fB, loopsB, false);

    // Scope-invariant symbols (parameters and out-of-scope loop
    // variables) hold one value for both instances; matching
    // coefficients cancel and the rest stays symbolic.
    for (const auto &[v, c] : fA.terms()) {
        if (!isSymbolic(loopsA, v))
            continue;
        int64_t combined = c - (isSymbolic(loopsB, v) ? fB.coeff(v) : 0);
        if (combined != 0)
            d.syms.emplace_back(v, combined);
    }
    for (const auto &[v, c] : fB.terms()) {
        if (!isSymbolic(loopsB, v))
            continue;
        if (fA.coeff(v) == 0 && c != 0)
            d.syms.emplace_back(v, -c);
    }
    return d;
}

/** GCD feasibility: some integer assignment can reach cdiff. */
bool
gcdFeasible(const DimForm &d)
{
    int64_t g = 0;
    for (const auto &[a, b] : d.common) {
        g = std::gcd(g, std::abs(a));
        g = std::gcd(g, std::abs(b));
    }
    for (const auto &p : d.priv)
        g = std::gcd(g, std::abs(p.coeff));
    for (const auto &[v, c] : d.syms)
        g = std::gcd(g, std::abs(c));
    if (g == 0)
        return d.cdiff == 0;
    return d.cdiff % g == 0;
}

/**
 * Structural memo key for one dependenceVectors query. Two queries
 * with equal keys take identical paths through the tests below, so
 * their results are interchangeable. The key therefore captures
 * everything the analysis reads:
 *
 *  - the common-prefix length (node *identity*, not derivable from
 *    structure — two structurally equal loops can be distinct nodes);
 *  - every loop in both chains: variable, step, bound expressions;
 *  - both references: array and per-dimension subscript forms (opaque
 *    subscripts collapse to a marker — any one of them forces the
 *    conservative answer regardless of its shape);
 *  - `sameOccurrence`;
 *  - the kind and bound parameter value of every variable mentioned —
 *    the feasibility engine (SigmaRange::exprRange) reads
 *    varInfo(v).paramValue, so rebinding a parameter must miss.
 */
std::string
dependenceMemoKey(const Program &prog, const ArrayRef &refA,
                  const std::vector<Node *> &loopsA,
                  const ArrayRef &refB,
                  const std::vector<Node *> &loopsB,
                  bool sameOccurrence, size_t nCommon)
{
    std::string key;
    key.reserve(160);
    std::vector<VarId> mentioned;

    auto addInt = [&key](int64_t v) {
        key += std::to_string(v);
        key += ';';
    };
    auto addAffine = [&](const AffineExpr &e) {
        key += 'c';
        addInt(e.constant());
        for (const auto &[v, c] : e.terms()) {
            key += 'v';
            addInt(v);
            addInt(c);
            mentioned.push_back(v);
        }
    };
    auto addLoops = [&](const std::vector<Node *> &loops) {
        addInt(static_cast<int64_t>(loops.size()));
        for (const Node *l : loops) {
            key += 'L';
            addInt(l->var);
            addInt(l->step);
            addAffine(l->lb);
            addAffine(l->ub);
            mentioned.push_back(l->var);
        }
    };
    auto addRef = [&](const ArrayRef &r) {
        key += 'A';
        addInt(r.array);
        for (const auto &s : r.subs) {
            if (s.isAffine()) {
                addAffine(s.affine);
            } else {
                key += 'O';
            }
        }
    };

    addInt(static_cast<int64_t>(nCommon));
    key += sameOccurrence ? 'S' : 's';
    addLoops(loopsA);
    addLoops(loopsB);
    addRef(refA);
    addRef(refB);

    std::sort(mentioned.begin(), mentioned.end());
    mentioned.erase(std::unique(mentioned.begin(), mentioned.end()),
                    mentioned.end());
    for (VarId v : mentioned) {
        const VarInfo &info = prog.varInfo(v);
        key += 'V';
        addInt(v);
        addInt(static_cast<int64_t>(info.kind));
        addInt(info.paramValue);
    }
    return key;
}

std::vector<DepVector>
computeDependenceVectors(const Program &prog, const ArrayRef &refA,
                         const std::vector<Node *> &loopsA,
                         const ArrayRef &refB,
                         const std::vector<Node *> &loopsB,
                         bool sameOccurrence, size_t nCommon)
{
    std::vector<DepVector> out;
    std::vector<CommonLoop> common;
    common.reserve(nCommon);
    for (size_t l = 0; l < nCommon; ++l)
        common.push_back({loopsA[l], loopsA[l]->step});

    auto conservative = [&]() {
        // Unanalyzable: every direction combination is possible, except
        // all-equals for a self pair.
        DepVector v;
        v.levels.assign(nCommon, DepLevel::dir(kDirAll));
        if (sameOccurrence) {
            if (nCommon == 0)
                return;  // a single access depends on nothing
            DepVector lt = v, gt = v, eqRest = v;
            lt.levels[0] = DepLevel::dir(DirLT);
            gt.levels[0] = DepLevel::dir(DirGT);
            eqRest.levels[0] = DepLevel::dir(DirEQ);
            out.push_back(lt);
            out.push_back(gt);
            if (nCommon > 1)
                out.push_back(eqRest);
        } else {
            out.push_back(v);
        }
    };

    if (!refA.isAffine() || !refB.isAffine() ||
        refA.subs.size() != refB.subs.size()) {
        conservative();
        return out;
    }

    // Build per-dimension linear forms; run sigma-independent tests.
    std::vector<DimForm> dims;
    std::vector<const DimForm *> complexDims;
    std::vector<std::optional<int64_t>> pinnedDist(nCommon, std::nullopt);

    dims.reserve(refA.subs.size());
    for (size_t k = 0; k < refA.subs.size(); ++k) {
        dims.push_back(buildDimForm(prog, refA.subs[k].affine, loopsA,
                                    refB.subs[k].affine, loopsB, common));
    }

    for (const auto &d : dims) {
        if (!d.usesAnyVar()) {
            // ZIV: constant difference.
            if (d.cdiff != 0)
                return {};
            continue;  // no constraint
        }
        if (!gcdFeasible(d))
            return {};
        int siv = d.strongSivLevel();
        if (siv >= 0) {
            int64_t a = d.common[siv].first;
            // a*iA + cA = a*iB + cB  =>  iB - iA = cdiff / a.
            if (d.cdiff % a != 0)
                return {};
            int64_t valueDist = d.cdiff / a;  // iB - iA in index values
            int64_t step = common[siv].step;
            if (valueDist % step != 0)
                return {};
            // Iteration distance sink-minus-source: iterB - iterA.
            int64_t iterDist = valueDist / step;
            if (pinnedDist[siv] && *pinnedDist[siv] != iterDist)
                return {};
            pinnedDist[siv] = iterDist;
        } else {
            complexDims.push_back(&d);
        }
    }

    // Distances outside the loop's numeric span are impossible.
    for (size_t l = 0; l < nCommon; ++l) {
        if (!pinnedDist[l])
            continue;
        const Node *loop = common[l].loop;
        if (loop->lb.isConstant() && loop->ub.isConstant()) {
            int64_t span = std::abs(loop->ub.constant() -
                                    loop->lb.constant()) /
                           std::abs(common[l].step);
            if (std::abs(*pinnedDist[l]) > span)
                return {};
        }
    }

    // Enumerate direction vectors consistent with the pinned distances;
    // range-check the complex dimensions per vector.
    std::vector<std::vector<Dir>> perLevel(nCommon);
    for (size_t l = 0; l < nCommon; ++l) {
        if (pinnedDist[l]) {
            int64_t d = *pinnedDist[l];
            perLevel[l] = {d > 0 ? DirLT : (d < 0 ? DirGT : DirEQ)};
        } else {
            perLevel[l] = {DirLT, DirEQ, DirGT};
        }
    }

    std::vector<Dir> sigma(nCommon, DirEQ);
    std::function<void(size_t)> enumerate = [&](size_t l) {
        if (l == nCommon) {
            bool allEq = true;
            for (size_t i = 0; i < nCommon; ++i)
                if (sigma[i] != DirEQ)
                    allEq = false;
            if (sameOccurrence && allEq)
                return;
            if (!complexDims.empty()) {
                SigmaRange engine(prog, common, loopsA, loopsB, sigma);
                for (const DimForm *d : complexDims)
                    if (!engine.feasible(*d))
                        return;
            }
            DepVector v;
            v.levels.reserve(nCommon);
            for (size_t i = 0; i < nCommon; ++i) {
                if (pinnedDist[i])
                    v.levels.push_back(DepLevel::exact(*pinnedDist[i]));
                else
                    v.levels.push_back(DepLevel::dir(sigma[i]));
            }
            out.push_back(std::move(v));
            return;
        }
        for (Dir dir : perLevel[l]) {
            sigma[l] = dir;
            enumerate(l + 1);
        }
    };
    enumerate(0);
    return out;
}

} // namespace

std::vector<DepVector>
dependenceVectors(const Program &prog, const ArrayRef &refA,
                  const std::vector<Node *> &loopsA, const ArrayRef &refB,
                  const std::vector<Node *> &loopsB, bool sameOccurrence)
{
    gDepFault.fireNoDiag();

    if (refA.array != refB.array)
        return {};

    // Common enclosing loops: longest shared prefix by node identity.
    size_t nCommon = 0;
    while (nCommon < loopsA.size() && nCommon < loopsB.size() &&
           loopsA[nCommon] == loopsB[nCommon])
        ++nCommon;

    // Memoize per structural query. The dependence graph is rebuilt
    // for every candidate permutation Compound scores, and nests keep
    // asking about the same reference pairs under the same loops —
    // the direction-vector enumeration with its feasibility engine is
    // by far the hottest part of analysis. thread_local keeps the
    // batch pool lock-free; the cache is bounded and cleared whole
    // rather than evicted (queries cluster per program, so a sweep
    // naturally refills it).
    constexpr size_t kMaxMemoEntries = 1 << 15;
    thread_local std::unordered_map<std::string, std::vector<DepVector>>
        memo;
    static obs::Counter &cHits = obs::counter("dependence.memo.hits");
    static obs::Counter &cMisses =
        obs::counter("dependence.memo.misses");

    std::string key = dependenceMemoKey(prog, refA, loopsA, refB,
                                        loopsB, sameOccurrence, nCommon);
    auto it = memo.find(key);
    if (it != memo.end()) {
        ++cHits;
        return it->second;
    }
    ++cMisses;

    std::vector<DepVector> out = computeDependenceVectors(
        prog, refA, loopsA, refB, loopsB, sameOccurrence, nCommon);
    if (memo.size() >= kMaxMemoEntries)
        memo.clear();
    memo.emplace(std::move(key), out);
    return out;
}

} // namespace memoria
