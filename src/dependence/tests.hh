/**
 * @file
 * Data dependence testing between array references.
 *
 * Implements the practical battery the paper's infrastructure (ParaScope
 * [GKT91]) relies on: ZIV, strong SIV with exact distances, and a
 * direction-vector Banerjee/GCD test for everything else. Opaque
 * subscripts (index arrays, linearized symbolic subscripts) degrade to
 * all-'*' vectors — the imprecision Section 5.3 reports for Cgm/Mg3d.
 *
 * Direction convention: a vector is expressed source -> sink, where
 * DirLT at level l means the source iteration of loop l precedes the
 * sink iteration. Directions are in *iteration* order (negative-step
 * loops flip the index-value relation).
 */

#ifndef MEMORIA_DEPENDENCE_TESTS_HH
#define MEMORIA_DEPENDENCE_TESTS_HH

#include <vector>

#include "dependence/vector.hh"
#include "ir/program.hh"
#include "ir/walk.hh"

namespace memoria {

/**
 * All feasible dependence vectors from reference A to reference B over
 * their common enclosing loops.
 *
 * loopsA / loopsB are each reference's enclosing loops, outermost first;
 * the longest common prefix (by node identity) defines the vector
 * length. The result enumerates single-direction vectors (exact
 * distances where a strong-SIV subscript pinned them); it includes
 * lexicographically negative vectors, which callers reinterpret as
 * B -> A dependences.
 *
 * When `sameOccurrence` is true (a reference paired with itself) the
 * all-equals vector is excluded, since it denotes the identical access.
 */
std::vector<DepVector>
dependenceVectors(const Program &prog, const ArrayRef &refA,
                  const std::vector<Node *> &loopsA, const ArrayRef &refB,
                  const std::vector<Node *> &loopsB,
                  bool sameOccurrence = false);

} // namespace memoria

#endif // MEMORIA_DEPENDENCE_TESTS_HH
