#include "dependence/vector.hh"

#include <sstream>

#include "support/logging.hh"

namespace memoria {

DepLevel
DepLevel::exact(int64_t d)
{
    DepLevel l;
    l.hasDist = true;
    l.dist = d;
    l.dirs = d > 0 ? DirLT : (d < 0 ? DirGT : DirEQ);
    return l;
}

DepLevel
DepLevel::dir(DirSet ds)
{
    MEMORIA_ASSERT(ds != 0, "empty direction set");
    DepLevel l;
    l.dirs = ds;
    return l;
}

DepLevel
DepLevel::reversed() const
{
    DepLevel out = *this;
    out.dirs = static_cast<DirSet>(((dirs & DirLT) ? DirGT : 0) |
                                   (dirs & DirEQ) |
                                   ((dirs & DirGT) ? DirLT : 0));
    if (hasDist)
        out.dist = -dist;
    return out;
}

bool
DepLevel::operator==(const DepLevel &o) const
{
    return dirs == o.dirs && hasDist == o.hasDist &&
           (!hasDist || dist == o.dist);
}

bool
DepVector::allEq() const
{
    for (const auto &l : levels)
        if (!l.isEQ())
            return false;
    return true;
}

bool
DepVector::maybeNegative() const
{
    for (const auto &l : levels) {
        if (l.canGT())
            return true;
        if (!l.canEQ())
            return false;  // forced '<' here; positive for sure
    }
    return false;
}

bool
DepVector::lexPositive() const
{
    if (maybeNegative())
        return false;
    // Not maybe-negative, so the only non-positive possibility left is
    // the all-equals combination.
    for (const auto &l : levels)
        if (!l.canEQ())
            return true;
    return false;
}

DepVector
DepVector::reversed() const
{
    DepVector out;
    out.levels.reserve(levels.size());
    for (const auto &l : levels)
        out.levels.push_back(l.reversed());
    return out;
}

DepVector
DepVector::permuted(const std::vector<int> &perm) const
{
    MEMORIA_ASSERT(perm.size() == levels.size(),
                   "permutation size mismatch");
    DepVector out;
    out.levels.reserve(levels.size());
    for (int p : perm)
        out.levels.push_back(levels.at(p));
    return out;
}

DepVector
DepVector::withLevelReversed(int level) const
{
    DepVector out = *this;
    out.levels.at(level) = out.levels.at(level).reversed();
    return out;
}

int
DepVector::carrierLevel() const
{
    for (size_t i = 0; i < levels.size(); ++i)
        if (!levels[i].canEQ())
            return static_cast<int>(i);
    return -1;
}

std::string
DepVector::str() const
{
    std::ostringstream os;
    os << "(";
    for (size_t i = 0; i < levels.size(); ++i) {
        if (i)
            os << ", ";
        const auto &l = levels[i];
        if (l.hasDist) {
            os << l.dist;
        } else if (l.dirs == kDirAll) {
            os << "*";
        } else {
            if (l.canLT())
                os << "<";
            if (l.canEQ())
                os << "=";
            if (l.canGT())
                os << ">";
        }
    }
    os << ")";
    return os.str();
}

bool
DepVector::operator==(const DepVector &o) const
{
    return levels == o.levels;
}

} // namespace memoria
