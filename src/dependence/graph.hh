/**
 * @file
 * Dependence graph over the statements of a scope.
 *
 * The graph holds every data dependence — flow, anti, output and input —
 * because the locality model's RefGroup algorithm needs input (read-read)
 * dependences to detect group-temporal reuse, while the transformation
 * legality tests use only the value-based kinds.
 */

#ifndef MEMORIA_DEPENDENCE_GRAPH_HH
#define MEMORIA_DEPENDENCE_GRAPH_HH

#include <functional>
#include <vector>

#include "dependence/vector.hh"
#include "ir/program.hh"
#include "ir/walk.hh"

namespace memoria {

/** Kind of data dependence. */
enum class DepType { Flow, Anti, Output, Input };

/** Printable name of a dependence type. */
const char *depTypeName(DepType t);

/** One dependence edge between two reference occurrences. */
struct DepEdge
{
    /** Positions of source/sink statements in the scope (textual). */
    int srcPos = -1;
    int dstPos = -1;

    const Statement *src = nullptr;
    const Statement *dst = nullptr;
    const ArrayRef *srcRef = nullptr;
    const ArrayRef *dstRef = nullptr;

    DepType type = DepType::Flow;

    /** Vector over the common loops of src and dst, outermost first.
     *  Guaranteed not maybe-negative (backward vectors are reversed and
     *  re-attributed during construction). */
    DepVector vec;

    /** All-equals vector: same-iteration dependence. */
    bool loopIndependent = false;

    /** True for flow/anti/output (the kinds that constrain reordering). */
    bool
    constrains() const
    {
        return type != DepType::Input;
    }
};

/**
 * Dependence graph for a list of statements in document order.
 *
 * The scope is typically the statements of one loop nest, a pair of
 * adjacent nests (for fusion), or a whole program.
 */
class DependenceGraph
{
  public:
    DependenceGraph(const Program &prog, std::vector<StmtContext> scope);

    const std::vector<DepEdge> &edges() const { return edges_; }
    const std::vector<StmtContext> &scope() const { return scope_; }

    /** Position of a statement id within the scope; -1 if absent. */
    int positionOf(int stmtId) const;

    /**
     * Strongly connected components of the statement graph restricted to
     * edges satisfying `keep` (input dependences never form recurrences
     * and are always excluded). Components are returned in a topological
     * order of the condensation; each component lists scope positions.
     */
    std::vector<std::vector<int>>
    sccs(const std::function<bool(const DepEdge &)> &keep) const;

  private:
    void build(const Program &prog);

    std::vector<StmtContext> scope_;
    std::vector<DepEdge> edges_;
};

/**
 * Split a possibly-ambiguous dependence vector into forward vectors
 * (source precedes sink) and backward vectors (already reversed so they
 * read sink-to-source). The all-equals component goes forward when
 * `allowEq` is set.
 */
void splitLex(const DepVector &v, bool allowEq,
              std::vector<DepVector> &forward,
              std::vector<DepVector> &backward);

} // namespace memoria

#endif // MEMORIA_DEPENDENCE_GRAPH_HH
