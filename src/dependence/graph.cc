#include "dependence/graph.hh"

#include <algorithm>

#include "dependence/tests.hh"
#include "support/logging.hh"

namespace memoria {

const char *
depTypeName(DepType t)
{
    switch (t) {
      case DepType::Flow:
        return "flow";
      case DepType::Anti:
        return "anti";
      case DepType::Output:
        return "output";
      case DepType::Input:
        return "input";
    }
    return "?";
}

void
splitLex(const DepVector &v, bool allowEq, std::vector<DepVector> &forward,
         std::vector<DepVector> &backward)
{
    // Walk the levels assuming every earlier level chose '='. At each
    // level, the '<' branch yields a forward vector, the '>' branch a
    // backward one, and the '=' branch continues to the next level.
    for (size_t k = 0; k < v.levels.size(); ++k) {
        const DepLevel &l = v.levels[k];
        auto prefixEq = [&](DepVector out, DepLevel decided) {
            for (size_t j = 0; j < k; ++j)
                out.levels[j] = DepLevel::exact(0);
            out.levels[k] = decided;
            return out;
        };
        if (l.canLT()) {
            DepLevel decided =
                l.hasDist ? DepLevel::exact(l.dist) : DepLevel::dir(DirLT);
            forward.push_back(prefixEq(v, decided));
        }
        if (l.canGT()) {
            DepLevel decided =
                l.hasDist ? DepLevel::exact(l.dist) : DepLevel::dir(DirGT);
            backward.push_back(prefixEq(v, decided).reversed());
        }
        if (!l.canEQ())
            return;
    }
    if (allowEq) {
        DepVector eq = v;
        for (auto &l : eq.levels)
            l = DepLevel::exact(0);
        forward.push_back(std::move(eq));
    }
}

DependenceGraph::DependenceGraph(const Program &prog,
                                 std::vector<StmtContext> scope)
    : scope_(std::move(scope))
{
    build(prog);
}

int
DependenceGraph::positionOf(int stmtId) const
{
    for (size_t i = 0; i < scope_.size(); ++i)
        if (scope_[i].node->stmt.id == stmtId)
            return static_cast<int>(i);
    return -1;
}

void
DependenceGraph::build(const Program &prog)
{
    // Per-statement occurrence lists, reads first and the write last, so
    // that same-iteration dependences follow evaluation order.
    struct Occ
    {
        int pos;
        const ArrayRef *ref;
        bool isWrite;
        const std::vector<Node *> *loops;
    };
    std::vector<Occ> occs;
    for (size_t p = 0; p < scope_.size(); ++p) {
        const Statement &s = scope_[p].node->stmt;
        auto refs = collectRefs(s);
        // collectRefs returns the write first; reorder reads-then-write.
        for (const auto &r : refs)
            if (!r.isWrite)
                occs.push_back({static_cast<int>(p), r.ref, false,
                                &scope_[p].loops});
        for (const auto &r : refs)
            if (r.isWrite)
                occs.push_back({static_cast<int>(p), r.ref, true,
                                &scope_[p].loops});
    }

    auto addEdges = [&](const Occ &a, const Occ &b, bool same) {
        auto vectors = dependenceVectors(prog, *a.ref, *a.loops, *b.ref,
                                         *b.loops, same);
        for (const auto &v : vectors) {
            std::vector<DepVector> fwd, bwd;
            // The all-equals component is a real (loop-independent)
            // dependence only across distinct occurrences.
            splitLex(v, !same, fwd, bwd);
            auto emit = [&](const Occ &src, const Occ &dst,
                            DepVector vec) {
                DepEdge e;
                e.srcPos = src.pos;
                e.dstPos = dst.pos;
                e.src = &scope_[src.pos].node->stmt;
                e.dst = &scope_[dst.pos].node->stmt;
                e.srcRef = src.ref;
                e.dstRef = dst.ref;
                e.loopIndependent = vec.allEq();
                e.type = src.isWrite
                             ? (dst.isWrite ? DepType::Output
                                            : DepType::Flow)
                             : (dst.isWrite ? DepType::Anti
                                            : DepType::Input);
                e.vec = std::move(vec);
                edges_.push_back(std::move(e));
            };
            for (auto &f : fwd)
                emit(a, b, std::move(f));
            for (auto &r : bwd)
                emit(b, a, std::move(r));
        }
    };

    for (size_t i = 0; i < occs.size(); ++i) {
        // Self pair: a write can depend on itself across iterations.
        if (occs[i].isWrite)
            addEdges(occs[i], occs[i], true);
        for (size_t j = i + 1; j < occs.size(); ++j) {
            if (occs[i].ref->array != occs[j].ref->array)
                continue;
            addEdges(occs[i], occs[j], false);
        }
    }
}

std::vector<std::vector<int>>
DependenceGraph::sccs(const std::function<bool(const DepEdge &)> &keep) const
{
    int n = static_cast<int>(scope_.size());
    std::vector<std::vector<int>> adj(n);
    for (const auto &e : edges_) {
        if (!e.constrains() || !keep(e))
            continue;
        adj[e.srcPos].push_back(e.dstPos);
    }

    // Tarjan's algorithm (iterative would be sturdier, but scopes are
    // small: tens of statements).
    std::vector<int> index(n, -1), low(n, 0), stackPos(n, 0);
    std::vector<bool> onStack(n, false);
    std::vector<int> stack;
    std::vector<std::vector<int>> components;
    int counter = 0;

    std::function<void(int)> strongConnect = [&](int v) {
        index[v] = low[v] = counter++;
        stack.push_back(v);
        onStack[v] = true;
        for (int w : adj[v]) {
            if (index[w] < 0) {
                strongConnect(w);
                low[v] = std::min(low[v], low[w]);
            } else if (onStack[w]) {
                low[v] = std::min(low[v], index[w]);
            }
        }
        if (low[v] == index[v]) {
            std::vector<int> comp;
            int w;
            do {
                w = stack.back();
                stack.pop_back();
                onStack[w] = false;
                comp.push_back(w);
            } while (w != v);
            std::sort(comp.begin(), comp.end());
            components.push_back(std::move(comp));
        }
    };

    for (int v = 0; v < n; ++v)
        if (index[v] < 0)
            strongConnect(v);

    // Tarjan emits components in reverse topological order.
    std::reverse(components.begin(), components.end());
    return components;
}

} // namespace memoria
