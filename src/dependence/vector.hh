/**
 * @file
 * Hybrid distance/direction dependence vectors.
 *
 * A DepVector describes, level by level from the outermost to the
 * innermost common loop, the relation between the source and sink
 * iterations of a data dependence. Each level carries a direction set
 * and, when a test could pin it down exactly, a distance (sink minus
 * source) — the "hybrid distance/direction vector with the most precise
 * information derivable" of Section 3.1 of the paper.
 */

#ifndef MEMORIA_DEPENDENCE_VECTOR_HH
#define MEMORIA_DEPENDENCE_VECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace memoria {

/** Direction bits: source-iteration vs sink-iteration at one level. */
enum Dir : uint8_t
{
    DirLT = 1,  ///< source iteration precedes sink iteration (<)
    DirEQ = 2,  ///< same iteration (=)
    DirGT = 4,  ///< source iteration follows sink iteration (>)
};

/** Set of possible directions at one level. */
using DirSet = uint8_t;

constexpr DirSet kDirAll = DirLT | DirEQ | DirGT;

/** One level of a dependence vector. */
struct DepLevel
{
    DirSet dirs = kDirAll;

    /** True when the distance below is exact. */
    bool hasDist = false;

    /** sink iteration minus source iteration (valid when hasDist). */
    int64_t dist = 0;

    /** A level with a known exact distance. */
    static DepLevel exact(int64_t d);

    /** A level with a direction set only. */
    static DepLevel dir(DirSet ds);

    bool canLT() const { return dirs & DirLT; }
    bool canEQ() const { return dirs & DirEQ; }
    bool canGT() const { return dirs & DirGT; }
    bool isLT() const { return dirs == DirLT; }
    bool isEQ() const { return dirs == DirEQ; }
    bool isGT() const { return dirs == DirGT; }

    /** The level as seen from the opposite direction (swap < and >). */
    DepLevel reversed() const;

    bool operator==(const DepLevel &o) const;
};

/**
 * A dependence vector over the common loops of two references,
 * outermost level first.
 */
struct DepVector
{
    std::vector<DepLevel> levels;

    size_t size() const { return levels.size(); }

    /** Every level is exactly '='. */
    bool allEq() const;

    /** Guaranteed lexicographically positive (a '<' level is reached
     *  before any level that could be '>' or the walk ends). */
    bool lexPositive() const;

    /** Could be lexicographically negative for some direction choice. */
    bool maybeNegative() const;

    /** The vector of the reversed dependence (sink -> source). */
    DepVector reversed() const;

    /** Reorder the levels by a loop permutation: out[i] = in[perm[i]]. */
    DepVector permuted(const std::vector<int> &perm) const;

    /** Negate one level (the effect of reversing that loop). */
    DepVector withLevelReversed(int level) const;

    /** First level that is definitely not '=' (-1 if none): the level
     *  that carries the dependence. */
    int carrierLevel() const;

    /** Render like "(<, =, 2)". */
    std::string str() const;

    bool operator==(const DepVector &o) const;
};

} // namespace memoria

#endif // MEMORIA_DEPENDENCE_VECTOR_HH
