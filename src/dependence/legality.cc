#include "dependence/legality.hh"

namespace memoria {

bool
permutationLegal(const std::vector<DepEdge> &edges,
                 const std::vector<int> &perm)
{
    size_t depth = perm.size();
    for (const auto &e : edges) {
        if (!e.constrains())
            continue;
        DepVector v = e.vec;
        if (v.levels.size() < depth)
            continue;  // not governed by this nest's full chain
        DepVector permuted;
        permuted.levels.reserve(v.levels.size());
        for (size_t i = 0; i < depth; ++i)
            permuted.levels.push_back(v.levels[perm[i]]);
        for (size_t i = depth; i < v.levels.size(); ++i)
            permuted.levels.push_back(v.levels[i]);
        if (permuted.maybeNegative())
            return false;
    }
    return true;
}

bool
prefixFeasible(const std::vector<DepEdge> &edges,
               const std::vector<int> &prefix)
{
    for (const auto &e : edges) {
        if (!e.constrains())
            continue;
        bool resolved = false;
        for (int p : prefix) {
            if (p >= static_cast<int>(e.vec.levels.size()))
                continue;
            const DepLevel &l = e.vec.levels[p];
            if (l.isLT()) {
                resolved = true;
                break;  // guaranteed positive already
            }
            if (l.canGT())
                return false;  // could go negative at this position
            // Level is '=' (or '<='): keep scanning.
        }
        (void)resolved;
    }
    return true;
}

bool
reversalLegal(const std::vector<DepEdge> &edges, int level)
{
    for (const auto &e : edges) {
        if (!e.constrains())
            continue;
        if (level >= static_cast<int>(e.vec.levels.size()))
            continue;
        if (e.vec.withLevelReversed(level).maybeNegative())
            return false;
    }
    return true;
}

bool
definitelyCarriedBefore(const DepEdge &edge, int level)
{
    for (int k = 0; k < level &&
                    k < static_cast<int>(edge.vec.levels.size()); ++k) {
        if (!edge.vec.levels[k].canEQ())
            return true;
    }
    return false;
}

} // namespace memoria
