#include "cachesim/reuse.hh"

#include "support/logging.hh"

namespace memoria {

ReuseDistanceAnalyzer::ReuseDistanceAnalyzer(int lineBytes)
{
    MEMORIA_ASSERT(lineBytes > 0 &&
                       (lineBytes & (lineBytes - 1)) == 0,
                   "line size must be a power of two");
    while ((1 << lineShift_) < lineBytes)
        ++lineShift_;
}

void
ReuseDistanceAnalyzer::fenwickAdd(size_t pos, int64_t delta)
{
    for (size_t i = pos + 1; i <= fenwick_.size(); i += i & (~i + 1))
        fenwick_[i - 1] += static_cast<uint64_t>(delta);
}

uint64_t
ReuseDistanceAnalyzer::fenwickSum(size_t pos) const
{
    uint64_t sum = 0;
    for (size_t i = pos + 1; i > 0; i -= i & (~i + 1))
        sum += fenwick_[i - 1];
    return sum;
}

void
ReuseDistanceAnalyzer::access(uint64_t addr, int size, bool isWrite)
{
    (void)size;
    (void)isWrite;
    uint64_t line = addr >> lineShift_;
    uint64_t now = clock_++;

    // Grow the Fenwick tree (timestamps are append-only).
    if (live_.size() <= now) {
        size_t target = std::max<size_t>(64, live_.size() * 2);
        if (target <= now)
            target = now + 1;
        // Rebuild the Fenwick tree at the new size.
        std::vector<uint8_t> oldLive = std::move(live_);
        live_.assign(target, 0);
        std::copy(oldLive.begin(), oldLive.end(), live_.begin());
        fenwick_.assign(target, 0);
        for (size_t t = 0; t < oldLive.size(); ++t)
            if (live_[t])
                fenwickAdd(t, 1);
    }

    auto it = lastUse_.find(line);
    if (it == lastUse_.end()) {
        ++cold_;
    } else {
        uint64_t prev = it->second;
        // Distinct lines touched strictly after prev: live stamps in
        // (prev, now).
        uint64_t upto = now > 0 ? fenwickSum(now - 1) : 0;
        uint64_t beforeEq = fenwickSum(prev);
        uint64_t dist = upto - beforeEq;
        ++total_;
        ++exact_[dist];
        int bucket = 0;
        while ((1ULL << (bucket + 1)) <= (dist | 1))
            ++bucket;
        if (histo_.size() <= static_cast<size_t>(bucket))
            histo_.resize(bucket + 1, 0);
        ++histo_[bucket];
        // The line's previous stamp is no longer its latest use.
        live_[prev] = 0;
        fenwickAdd(prev, -1);
    }
    lastUse_[line] = now;
    live_[now] = 1;
    fenwickAdd(now, 1);
}

double
ReuseDistanceAnalyzer::missRatio(uint64_t capacityLines) const
{
    if (total_ == 0)
        return 0.0;
    uint64_t misses = 0;
    for (auto it = exact_.lower_bound(capacityLines);
         it != exact_.end(); ++it)
        misses += it->second;
    return static_cast<double>(misses) / static_cast<double>(total_);
}

double
ReuseDistanceAnalyzer::meanDistance() const
{
    if (total_ == 0)
        return 0.0;
    double acc = 0.0;
    for (const auto &[d, c] : exact_)
        acc += static_cast<double>(d) * static_cast<double>(c);
    return acc / static_cast<double>(total_);
}

} // namespace memoria
