/**
 * @file
 * Single-sweep multi-configuration cache simulation.
 *
 * The paper's Table 4 evaluates every program against two cache
 * geometries; the batch driver and the compile service re-simulate the
 * same access stream per configuration. Re-running the interpreter is
 * the expensive part — the cache model itself is cheap — so this layer
 * consumes the reference stream **once** and feeds N set-associative
 * caches in lockstep, plus an optional reuse-distance analyzer that
 * answers hit rates for *all* fully-associative capacities from the
 * same pass (cachesim/reuse.hh; cf. Fauzia et al., "Beyond Reuse
 * Distance Analysis").
 *
 * Accesses arrive in batches (AccessBatchSink) rather than one virtual
 * call per reference: the interpreter fills a fixed buffer and flushes
 * it in chunks, so the per-access cost inside the simulator is a plain
 * array walk. Each per-config cache is the ordinary `Cache` — the same
 * code path as a standalone run — which is what makes the sweep's
 * counters bitwise-identical to independent per-config simulations
 * (asserted in tests/test_cachesim.cc).
 */

#ifndef MEMORIA_CACHESIM_SWEEP_HH
#define MEMORIA_CACHESIM_SWEEP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cachesim/cache.hh"
#include "cachesim/reuse.hh"

namespace memoria {

/** One scalar memory access, as buffered by the interpreter. */
struct AccessRecord
{
    uint64_t addr = 0;
    uint32_t size = 0;
    bool isWrite = false;
};

/** Consumer of batched access records. */
class AccessBatchSink
{
  public:
    virtual ~AccessBatchSink() = default;

    /** Consume `n` records; called repeatedly over the stream. */
    virtual void consumeBatch(const AccessRecord *rec, size_t n) = 0;
};

/**
 * MemoryListener adapter that buffers accesses into a fixed-capacity
 * array and flushes it to an AccessBatchSink in chunks. The producer
 * (interpreter) pays one append per access and one virtual call per
 * batch; the buffer is allocated once up front, never per access.
 */
class BatchingListener final : public MemoryListener
{
  public:
    static constexpr size_t kDefaultBatch = 4096;

    explicit BatchingListener(AccessBatchSink &sink,
                              size_t capacity = kDefaultBatch);

    void
    access(uint64_t addr, int size, bool isWrite) override
    {
        buf_.push_back({addr, static_cast<uint32_t>(size), isWrite});
        if (buf_.size() == capacity_)
            flush();
    }

    /** Drain the buffer. Callers must flush after the final access
     *  (runBatched does). Safe on an empty buffer. */
    void flush();

  private:
    AccessBatchSink &sink_;
    size_t capacity_;
    std::vector<AccessRecord> buf_;
};

/** Optional reuse-distance mode for a MultiCacheSim sweep. */
struct SweepReuseOptions
{
    bool enabled = false;
    int lineBytes = 32;
};

/**
 * N set-associative caches advanced in lockstep over one access
 * stream, with an optional reuse-distance histogram sharing the pass.
 */
class MultiCacheSim final : public AccessBatchSink
{
  public:
    explicit MultiCacheSim(const std::vector<CacheConfig> &configs,
                           SweepReuseOptions reuse = {});

    void consumeBatch(const AccessRecord *rec, size_t n) override;

    size_t configCount() const { return caches_.size(); }
    const Cache &cache(size_t i) const { return caches_[i]; }
    const CacheStats &stats(size_t i) const
    {
        return caches_[i].stats();
    }

    /** Null unless reuse mode was enabled. */
    const ReuseDistanceAnalyzer *reuse() const { return reuse_.get(); }

    /** Empty every cache and the analyzer; zero all statistics. */
    void reset();

  private:
    std::vector<Cache> caches_;
    SweepReuseOptions reuseOpts_;
    std::unique_ptr<ReuseDistanceAnalyzer> reuse_;
};

} // namespace memoria

#endif // MEMORIA_CACHESIM_SWEEP_HH
