/**
 * @file
 * Two-level cache hierarchy.
 *
 * Section 1.1 notes that "higher degrees of tiling can be applied to
 * exploit multi-level caches"; this listener models an L1 backed by an
 * L2 so those experiments can be run. L2 sees only L1 misses.
 */

#ifndef MEMORIA_CACHESIM_HIERARCHY_HH
#define MEMORIA_CACHESIM_HIERARCHY_HH

#include "cachesim/cache.hh"

namespace memoria {

/** An L1 cache backed by an L2; accesses filter through. */
class CacheHierarchy : public MemoryListener
{
  public:
    CacheHierarchy(CacheConfig l1, CacheConfig l2)
        : l1_(std::move(l1)), l2_(std::move(l2))
    {
    }

    void
    access(uint64_t addr, int size, bool isWrite) override
    {
        (void)size;
        (void)isWrite;
        if (!l1_.probe(addr))
            l2_.probe(addr);
    }

    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }

    /** Average access latency under a simple 1/10/100-cycle model. */
    double
    averageLatency(double hitL1 = 1.0, double hitL2 = 10.0,
                   double memory = 100.0) const
    {
        const CacheStats &s1 = l1_.stats();
        const CacheStats &s2 = l2_.stats();
        if (s1.accesses == 0)
            return hitL1;
        double total = hitL1 * static_cast<double>(s1.accesses) +
                       hitL2 * static_cast<double>(s1.misses) +
                       (memory - hitL2) *
                           static_cast<double>(s2.misses);
        return total / static_cast<double>(s1.accesses);
    }

  private:
    Cache l1_;
    Cache l2_;
};

} // namespace memoria

#endif // MEMORIA_CACHESIM_HIERARCHY_HH
