#include "cachesim/cache.hh"

#include "harness/fault.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace memoria {

namespace {

/** Fires once per simulated run (at cache construction), so arming it
 *  never costs anything on the per-access hot path. */
harness::FaultSite gCachesimFault("cachesim.run");

} // namespace

CacheConfig
CacheConfig::rs6000()
{
    CacheConfig c;
    c.name = "cache1 (RS/6000 64KB 4-way 128B)";
    c.sizeBytes = 64 * 1024;
    c.associativity = 4;
    c.lineBytes = 128;
    return c;
}

CacheConfig
CacheConfig::i860()
{
    CacheConfig c;
    c.name = "cache2 (i860 8KB 2-way 32B)";
    c.sizeBytes = 8 * 1024;
    c.associativity = 2;
    c.lineBytes = 32;
    return c;
}

double
CacheStats::hitRate() const
{
    return accesses == 0 ? 100.0 : 100.0 * hits / accesses;
}

double
CacheStats::hitRateWarm() const
{
    uint64_t warm = accesses - coldMisses;
    return warm == 0 ? 100.0 : 100.0 * hits / warm;
}

void
CacheStats::checkConsistent() const
{
    MEMORIA_ASSERT(hits + misses == accesses,
                   "cache counters out of sync: " << hits << " hits + "
                       << misses << " misses != " << accesses
                       << " accesses");
    MEMORIA_ASSERT(coldMisses <= misses,
                   "more cold misses than misses");
    MEMORIA_ASSERT(evictions <= misses, "more evictions than misses");
}

Cache::Cache(CacheConfig config) : config_(std::move(config))
{
    gCachesimFault.fireNoDiag();
    MEMORIA_ASSERT(config_.lineBytes > 0 &&
                       (config_.lineBytes & (config_.lineBytes - 1)) == 0,
                   "line size must be a power of two");
    MEMORIA_ASSERT(config_.numSets() > 0 &&
                       (config_.numSets() & (config_.numSets() - 1)) == 0,
                   "set count must be a power of two");
    while ((1 << lineShift_) < config_.lineBytes)
        ++lineShift_;
    ways_.assign(config_.numSets() * config_.associativity, Way{});
}

void
Cache::access(uint64_t addr, int size, bool isWrite)
{
    (void)size;
    bool hit = probe(addr);
    if (samplePeriod_ && obs::tracingEnabled() &&
        stats_.accesses % samplePeriod_ == 0) {
        obs::traceEvent("cachesim", "access",
                        {{"addr", addr},
                         {"write", isWrite},
                         {"hit", hit}});
    }
}

bool
Cache::probe(uint64_t addr)
{
    uint64_t line = addr >> lineShift_;
    uint64_t set = line & (config_.numSets() - 1);
    uint64_t tag = line >> 1;  // keep full line id as tag (simpler)
    (void)tag;

    Way *base = &ways_[set * config_.associativity];
    ++clock_;
    ++stats_.accesses;

    Way *victim = base;
    for (int w = 0; w < config_.associativity; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line) {
            way.lastUse = clock_;
            ++stats_.hits;
            MEMORIA_ASSERT(stats_.hits + stats_.misses == stats_.accesses,
                           "cache counters out of sync");
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }

    ++stats_.misses;
    MEMORIA_ASSERT(stats_.hits + stats_.misses == stats_.accesses,
                   "cache counters out of sync");
    if (touchedLines_.insert(line).second)
        ++stats_.coldMisses;
    if (victim->valid)
        ++stats_.evictions;
    victim->valid = true;
    victim->tag = line;
    victim->lastUse = clock_;
    return false;
}

void
Cache::publishStats(const std::string &prefix) const
{
    stats_.checkConsistent();
    obs::counter(prefix + ".accesses") += stats_.accesses;
    obs::counter(prefix + ".hits") += stats_.hits;
    obs::counter(prefix + ".misses") += stats_.misses;
    obs::counter(prefix + ".cold_misses") += stats_.coldMisses;
    obs::counter(prefix + ".evictions") += stats_.evictions;
}

void
Cache::reset()
{
    stats_ = CacheStats{};
    touchedLines_.clear();
    ways_.assign(ways_.size(), Way{});
    clock_ = 0;
}

} // namespace memoria
