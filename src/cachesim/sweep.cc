#include "cachesim/sweep.hh"

#include "support/stats.hh"

namespace memoria {

BatchingListener::BatchingListener(AccessBatchSink &sink, size_t capacity)
    : sink_(sink), capacity_(capacity ? capacity : 1)
{
    buf_.reserve(capacity_);
}

void
BatchingListener::flush()
{
    if (buf_.empty())
        return;
    sink_.consumeBatch(buf_.data(), buf_.size());
    buf_.clear();
}

MultiCacheSim::MultiCacheSim(const std::vector<CacheConfig> &configs,
                             SweepReuseOptions reuse)
    : reuseOpts_(reuse)
{
    caches_.reserve(configs.size());
    for (const CacheConfig &c : configs)
        caches_.emplace_back(c);
    if (reuseOpts_.enabled)
        reuse_ = std::make_unique<ReuseDistanceAnalyzer>(
            reuseOpts_.lineBytes);
}

void
MultiCacheSim::consumeBatch(const AccessRecord *rec, size_t n)
{
    // Config-major over the batch: each cache's set array stays hot
    // while it walks the records, instead of being reloaded per access.
    for (Cache &c : caches_)
        for (size_t i = 0; i < n; ++i)
            c.probe(rec[i].addr);
    if (reuse_)
        for (size_t i = 0; i < n; ++i)
            reuse_->access(rec[i].addr, static_cast<int>(rec[i].size),
                           rec[i].isWrite);
    static obs::Counter &cBatches = obs::counter("cachesim.sweep.batches");
    ++cBatches;
}

void
MultiCacheSim::reset()
{
    for (Cache &c : caches_)
        c.reset();
    // ReuseDistanceAnalyzer has no reset; rebuild with the same
    // geometry (line size is its only construction parameter).
    if (reuse_)
        reuse_ = std::make_unique<ReuseDistanceAnalyzer>(
            reuseOpts_.lineBytes);
}

} // namespace memoria
