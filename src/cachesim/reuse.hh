/**
 * @file
 * Reuse-distance (LRU stack distance) analysis.
 *
 * The reuse-distance histogram of an address trace determines the miss
 * ratio of a fully associative LRU cache of *every* capacity at once:
 * an access misses iff its reuse distance (number of distinct lines
 * touched since the previous access to the same line) is at least the
 * cache's line capacity. This gives a machine-independent way to see
 * what the paper's transformations do to a program's entire locality
 * profile, not just one cache geometry.
 *
 * Implementation: classic Bennett/Kruskal-style counting with a Fenwick
 * tree over access timestamps (O(log n) per access).
 */

#ifndef MEMORIA_CACHESIM_REUSE_HH
#define MEMORIA_CACHESIM_REUSE_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "cachesim/cache.hh"

namespace memoria {

/** Streams a trace and accumulates the reuse-distance histogram. */
class ReuseDistanceAnalyzer : public MemoryListener
{
  public:
    explicit ReuseDistanceAnalyzer(int lineBytes = 32);

    void access(uint64_t addr, int size, bool isWrite) override;

    /** Histogram bucket counts: bucket b holds accesses with distance
     *  in [2^b, 2^(b+1)); bucket 0 holds distances 0 and 1. */
    const std::vector<uint64_t> &histogram() const { return histo_; }

    /** Cold (first-touch) accesses, excluded from the histogram. */
    uint64_t coldAccesses() const { return cold_; }

    /** Total non-cold accesses. */
    uint64_t warmAccesses() const { return total_; }

    /**
     * Miss ratio (0..1) of a fully associative LRU cache holding
     * `capacityLines` lines, computed from the exact distances (cold
     * misses excluded).
     */
    double missRatio(uint64_t capacityLines) const;

    /** Mean reuse distance over warm accesses. */
    double meanDistance() const;

  private:
    int lineShift_ = 0;
    uint64_t clock_ = 0;
    uint64_t cold_ = 0;
    uint64_t total_ = 0;
    std::unordered_map<uint64_t, uint64_t> lastUse_;  ///< line -> time
    std::vector<uint8_t> live_;  ///< timestamp is a line's latest use
    std::vector<uint64_t> fenwick_;
    std::vector<uint64_t> histo_;
    /** Exact distance counts (distance -> accesses), for missRatio. */
    std::map<uint64_t, uint64_t> exact_;

    void fenwickAdd(size_t pos, int64_t delta);
    uint64_t fenwickSum(size_t pos) const;  ///< prefix sum [0, pos]
};

} // namespace memoria

#endif // MEMORIA_CACHESIM_REUSE_HH
