/**
 * @file
 * Set-associative cache simulator with LRU replacement.
 *
 * Models the two configurations of the paper's Table 4: cache1, the IBM
 * RS/6000 data cache (64KB, 4-way, 128-byte lines), and cache2, the
 * Intel i860 (8KB, 2-way, 32-byte lines). Hit rates can be reported
 * with cold (first-touch) misses excluded, as the paper does.
 */

#ifndef MEMORIA_CACHESIM_CACHE_HH
#define MEMORIA_CACHESIM_CACHE_HH

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace memoria {

/** Geometry of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    int64_t sizeBytes = 64 * 1024;
    int associativity = 4;
    int lineBytes = 128;

    int64_t
    numSets() const
    {
        return sizeBytes / (static_cast<int64_t>(associativity) *
                            lineBytes);
    }

    /** cache1: IBM RS/6000 — 64KB, 4-way, 128-byte lines. */
    static CacheConfig rs6000();

    /** cache2: Intel i860 — 8KB, 2-way, 32-byte lines. */
    static CacheConfig i860();
};

/** Hit/miss counters. Invariant: hits + misses == accesses (asserted
 *  by Cache on every probe; see checkConsistent). */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t coldMisses = 0;
    uint64_t evictions = 0;  ///< valid lines displaced by a fill

    /** Hit rate in percent over all accesses. */
    double hitRate() const;

    /** Hit rate in percent with cold misses excluded (Table 4). */
    double hitRateWarm() const;

    /** Panics unless the counters reconcile (hits + misses == accesses,
     *  cold misses and evictions bounded by misses). */
    void checkConsistent() const;
};

/** Interface for components observing the memory reference stream. */
class MemoryListener
{
  public:
    virtual ~MemoryListener() = default;

    /** One scalar access of `size` bytes at virtual address `addr`. */
    virtual void access(uint64_t addr, int size, bool isWrite) = 0;
};

/** A single-level set-associative LRU cache. */
class Cache : public MemoryListener
{
  public:
    explicit Cache(CacheConfig config);

    void access(uint64_t addr, int size, bool isWrite) override;

    /** Probe one address; returns true on hit. Updates LRU state. */
    bool probe(uint64_t addr);

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }

    /** Empty the cache and zero the statistics. */
    void reset();

    /**
     * Emit every `period`-th access as a `cachesim/access` trace event
     * (0 disables, the default). Events only fire while a trace sink is
     * installed, so sampling can stay configured at zero run cost.
     */
    void setAccessTraceSampling(uint64_t period) { samplePeriod_ = period; }

    /** Add this cache's counters into the process stats registry under
     *  `prefix` (e.g. "cachesim"). */
    void publishStats(const std::string &prefix = "cachesim") const;

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    CacheConfig config_;
    CacheStats stats_;
    std::vector<Way> ways_;  ///< numSets x associativity, row-major
    std::unordered_set<uint64_t> touchedLines_;
    uint64_t clock_ = 0;
    int lineShift_ = 0;
    uint64_t samplePeriod_ = 0;
};

} // namespace memoria

#endif // MEMORIA_CACHESIM_CACHE_HH
