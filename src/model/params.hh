/**
 * @file
 * Parameters of the locality cost model.
 */

#ifndef MEMORIA_MODEL_PARAMS_HH
#define MEMORIA_MODEL_PARAMS_HH

namespace memoria {

/**
 * How symbolic/triangular trip counts are folded into cost polynomials.
 *
 * The paper compares "dominating terms" for symbolic bounds, which for a
 * triangular loop like DO J = K+1, I amounts to using the full extent n
 * (Figure 7 prints 1/4 n for the consecutive cost of such a loop with
 * cls = 4). `Average` instead substitutes the mean value of outer
 * indices, giving expected rather than worst-case trip counts; the
 * ablation benchmark compares the two.
 */
enum class TriangularPolicy
{
    Dominant,  ///< maximize the trip count over outer-variable ranges
    Average,   ///< use the mean value of outer variables
};

/** Model parameters: only the cache line size matters at this stage
 *  (Section 1.1, step 1 is machine-independent apart from cls). */
struct ModelParams
{
    /** Cache line size in bytes; cls in array elements is derived
     *  per-array from its element size. */
    int lineBytes = 32;

    TriangularPolicy policy = TriangularPolicy::Dominant;

    /** Group-temporal constant bound: |d| <= maxGroupDist (paper: 2). */
    int64_t maxGroupDist = 2;
};

} // namespace memoria

#endif // MEMORIA_MODEL_PARAMS_HH
