/**
 * @file
 * Data-access-property statistics (Table 5 of the paper).
 *
 * Classifies every reference group by its self-reuse with respect to the
 * innermost loop enclosing its representative: loop-invariant,
 * unit-stride (consecutive) or none, plus group-spatial participation
 * and the number of references per group.
 */

#ifndef MEMORIA_MODEL_ACCESS_HH
#define MEMORIA_MODEL_ACCESS_HH

#include "model/loopcost.hh"

namespace memoria {

/** Aggregated reference-group statistics for one nest or one program. */
struct AccessStats
{
    int invGroups = 0;
    int unitGroups = 0;
    int noneGroups = 0;

    /** Groups formed (partly) through group-spatial reuse. */
    int spatialGroups = 0;

    /** Total member references per class (for Refs/Group averages). */
    int invRefs = 0;
    int unitRefs = 0;
    int noneRefs = 0;

    int
    totalGroups() const
    {
        return invGroups + unitGroups + noneGroups;
    }

    int
    totalRefs() const
    {
        return invRefs + unitRefs + noneRefs;
    }

    AccessStats &operator+=(const AccessStats &o);

    double pctInv() const;
    double pctUnit() const;
    double pctNone() const;
    double pctGroupSpatial() const;
    double refsPerInvGroup() const;
    double refsPerUnitGroup() const;
    double refsPerNoneGroup() const;
    double refsPerGroup() const;
};

/**
 * Gather access statistics for one analyzed nest: every reference group
 * is classified against the innermost loop enclosing its representative.
 */
AccessStats gatherAccessStats(const NestAnalysis &na);

} // namespace memoria

#endif // MEMORIA_MODEL_ACCESS_HH
