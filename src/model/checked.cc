#include "model/checked.hh"

#include <atomic>
#include <cmath>
#include <limits>

#include "support/logging.hh"

namespace memoria {

namespace {

/** Largest finite stand-in for an overflowed cost coefficient. */
constexpr double kHuge = 1e300;

void
warnOnce(const char *what)
{
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true))
        warn(std::string("cost-model arithmetic overflow (") + what +
             "); saturating — reported costs are lower bounds");
}

int64_t
saturate(bool negative)
{
    return negative ? std::numeric_limits<int64_t>::min()
                    : std::numeric_limits<int64_t>::max();
}

} // namespace

int64_t
checkedMul(int64_t a, int64_t b)
{
    int64_t r = 0;
    if (__builtin_mul_overflow(a, b, &r)) {
        warnOnce("multiply");
        return saturate((a < 0) != (b < 0));
    }
    return r;
}

int64_t
checkedAdd(int64_t a, int64_t b)
{
    int64_t r = 0;
    if (__builtin_add_overflow(a, b, &r)) {
        warnOnce("add");
        return saturate(a < 0);
    }
    return r;
}

int64_t
checkedAbs(int64_t a)
{
    if (a == std::numeric_limits<int64_t>::min()) {
        warnOnce("abs");
        return std::numeric_limits<int64_t>::max();
    }
    return a < 0 ? -a : a;
}

Poly
saturatePoly(Poly p)
{
    bool dirty = false;
    for (int k = 0; k <= p.degree(); ++k)
        dirty = dirty || !std::isfinite(p.coeff(k));
    if (!dirty)
        return p;
    warnOnce("polynomial coefficient");
    std::vector<double> coeffs;
    for (int k = 0; k <= p.degree(); ++k) {
        double c = p.coeff(k);
        if (std::isnan(c))
            c = kHuge;
        else if (!std::isfinite(c))
            c = c > 0 ? kHuge : -kHuge;
        coeffs.push_back(c);
    }
    return Poly::fromCoeffs(std::move(coeffs));
}

double
checkedEval(const Poly &p, double n)
{
    double v = p.eval(n);
    if (std::isfinite(v))
        return v;
    warnOnce("polynomial evaluation");
    if (std::isnan(v))
        return kHuge;
    return v > 0 ? kHuge : -kHuge;
}

} // namespace memoria
