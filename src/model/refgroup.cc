#include "model/refgroup.hh"

#include <cstdlib>
#include <map>
#include <numeric>

#include "support/logging.hh"
#include "support/stats.hh"

namespace memoria {

namespace {

/** Union-find over reference indices. */
class UnionFind
{
  public:
    explicit UnionFind(size_t n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    int
    find(int x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    /** Returns true when the sets were distinct. */
    bool
    unite(int a, int b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return false;
        parent_[b] = a;
        return true;
    }

  private:
    std::vector<int> parent_;
};

/** Condition 1: group-temporal reuse via a dependence. */
bool
groupTemporal(const DepEdge &e, const std::vector<Node *> &srcLoops,
              const Node *candidate, int64_t maxDist)
{
    if (e.loopIndependent)
        return true;  // condition 1(a)

    // Condition 1(b): the entry for the candidate loop is a small exact
    // constant and every other entry is zero.
    int candidateLevel = -1;
    for (size_t p = 0; p < e.vec.levels.size() && p < srcLoops.size();
         ++p) {
        if (srcLoops[p] == candidate) {
            candidateLevel = static_cast<int>(p);
            break;
        }
    }
    if (candidateLevel < 0)
        return false;

    for (size_t p = 0; p < e.vec.levels.size(); ++p) {
        const DepLevel &l = e.vec.levels[p];
        if (!l.hasDist)
            return false;
        if (static_cast<int>(p) == candidateLevel) {
            if (std::abs(l.dist) > maxDist)
                return false;
        } else if (l.dist != 0) {
            return false;
        }
    }
    return true;
}

/** Condition 2: group-spatial reuse. Returns the first-subscript
 *  difference through `diff` when the references qualify. */
bool
groupSpatial(const Program &prog, const ArrayRef &a, const ArrayRef &b,
             int lineBytes, int64_t *diff)
{
    if (a.array != b.array || a.subs.size() != b.subs.size() ||
        a.subs.empty())
        return false;
    for (const auto &s : a.subs)
        if (!s.isAffine())
            return false;
    for (const auto &s : b.subs)
        if (!s.isAffine())
            return false;

    AffineExpr d = a.subs[0].affine - b.subs[0].affine;
    if (!d.isConstant())
        return false;
    const ArrayDecl &decl = prog.arrayDecl(a.array);
    int64_t cls = std::max(1, lineBytes / decl.elemSize);
    if (std::abs(d.constant()) > cls)
        return false;
    for (size_t k = 1; k < a.subs.size(); ++k)
        if (!(a.subs[k].affine == b.subs[k].affine))
            return false;
    *diff = d.constant();
    return true;
}

} // namespace

std::vector<SpatialPair>
computeSpatialPairs(const Program &prog, const std::vector<NestRef> &refs,
                    const ModelParams &params)
{
    static obs::Counter &cScans =
        obs::counter("model.refgroup.spatial_scans");
    ++cScans;
    std::vector<SpatialPair> out;
    for (size_t i = 0; i < refs.size(); ++i) {
        for (size_t j = i + 1; j < refs.size(); ++j) {
            int64_t diff = 0;
            if (groupSpatial(prog, *refs[i].ref, *refs[j].ref,
                             params.lineBytes, &diff)) {
                out.push_back({static_cast<int>(i), static_cast<int>(j),
                               diff != 0});
            }
        }
    }
    return out;
}

std::vector<RefGroup>
computeRefGroups(const Program &prog, const std::vector<NestRef> &refs,
                 const std::vector<DepEdge> &edges, const Node *candidate,
                 const ModelParams &params,
                 const std::vector<SpatialPair> *spatialPairs)
{
    UnionFind uf(refs.size());
    std::map<const ArrayRef *, int> indexOf;
    for (size_t i = 0; i < refs.size(); ++i)
        indexOf[refs[i].ref] = static_cast<int>(i);

    std::vector<bool> spatialJoin(refs.size(), false);

    // Condition 1: dependence-based group-temporal reuse.
    for (const auto &e : edges) {
        auto is = indexOf.find(e.srcRef);
        auto id = indexOf.find(e.dstRef);
        if (is == indexOf.end() || id == indexOf.end() ||
            is->second == id->second)
            continue;
        if (groupTemporal(e, refs[is->second].loops, candidate,
                          params.maxGroupDist))
            uf.unite(is->second, id->second);
    }

    // Condition 2: group-spatial reuse (same line via first subscript).
    // The pair scan is candidate-independent; reuse the caller's
    // precomputed pairs when available.
    std::vector<SpatialPair> localPairs;
    if (!spatialPairs) {
        localPairs = computeSpatialPairs(prog, refs, params);
        spatialPairs = &localPairs;
    }
    for (const SpatialPair &p : *spatialPairs) {
        uf.unite(p.a, p.b);
        if (p.nonzeroDiff) {
            spatialJoin[p.a] = true;
            spatialJoin[p.b] = true;
        }
    }

    // Materialize groups, choosing the deepest-nesting representative.
    std::map<int, RefGroup> byRoot;
    for (size_t i = 0; i < refs.size(); ++i) {
        RefGroup &g = byRoot[uf.find(static_cast<int>(i))];
        g.members.push_back(static_cast<int>(i));
        if (spatialJoin[i])
            g.groupSpatial = true;
    }
    std::vector<RefGroup> out;
    out.reserve(byRoot.size());
    for (auto &[root, g] : byRoot) {
        g.representative = g.members.front();
        for (int m : g.members) {
            if (refs[m].loops.size() >
                refs[g.representative].loops.size())
                g.representative = m;
        }
        out.push_back(std::move(g));
    }
    return out;
}

} // namespace memoria
