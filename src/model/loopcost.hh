/**
 * @file
 * RefCost / LoopCost / MemoryOrder (Figure 1 and Section 4.1).
 *
 * NestAnalysis evaluates one loop nest (perfect or imperfect): for every
 * loop l in the nest it computes LoopCost(l), the number of cache lines
 * accessed when l is placed innermost, and ranks the loops into *memory
 * order* — outermost to innermost by decreasing LoopCost. Costs are
 * polynomials in the abstract size symbol n (see support/poly.hh), and
 * the ordering compares dominating terms as the paper prescribes.
 */

#ifndef MEMORIA_MODEL_LOOPCOST_HH
#define MEMORIA_MODEL_LOOPCOST_HH

#include <map>
#include <vector>

#include "dependence/graph.hh"
#include "ir/program.hh"
#include "model/params.hh"
#include "model/refgroup.hh"
#include "model/trip.hh"

namespace memoria {

/** Self-reuse classification of a reference w.r.t. a candidate loop. */
enum class Reuse
{
    Invariant,    ///< no subscript uses the loop: 1 line
    Consecutive,  ///< unit/small stride in the first subscript only
    None,         ///< a new line every iteration
};

/** Printable name of a reuse class. */
const char *reuseName(Reuse r);

/**
 * Locality analysis of one loop nest.
 *
 * The scope is the subtree rooted at a loop; dependences, reference
 * groups and costs are all computed within it. Outer loops (e.g. a
 * timestep loop around the nest) can be registered so that symbolic
 * bounds referencing their variables resolve.
 */
class NestAnalysis
{
  public:
    NestAnalysis(const Program &prog, Node *root, ModelParams params,
                 const std::vector<Node *> &outerLoops = {});

    /** All loops in the nest, preorder (root first). */
    const std::vector<Node *> &loops() const { return loops_; }

    /** All reference occurrences in the nest. */
    const std::vector<NestRef> &refs() const { return refs_; }

    /** The dependence graph of the nest's statements. */
    const DependenceGraph &graph() const { return graph_; }

    /** Reference groups with respect to a candidate loop. */
    const std::vector<RefGroup> &groups(const Node *candidate) const;

    /** Reference groups restricted to one statement sub-nest. */
    struct ScopedGroups
    {
        /** Indices into refs() of the sub-nest's references. */
        std::vector<int> refIndices;
        /** Groups whose members index into refIndices. */
        std::vector<RefGroup> groups;
    };

    /**
     * Reference groups computed among only the references whose
     * innermost loop is `inner` — the paper's per-nest evaluation when
     * costing imperfect structures (e.g. the two K nests of Figure 3
     * are grouped independently before their LoopCosts are added).
     */
    const ScopedGroups &groupsWithin(const Node *candidate,
                                     const Node *inner) const;

    /** RefCost of one reference when `candidate` is innermost. */
    Poly refCost(const NestRef &ref, const Node *candidate) const;

    /** Reuse class of one reference w.r.t. `candidate`. */
    Reuse classify(const NestRef &ref, const Node *candidate) const;

    /** LoopCost(candidate): cache lines accessed with it innermost. */
    Poly loopCost(const Node *candidate) const;

    /**
     * Memory order: the nest's loops sorted outermost-to-innermost by
     * decreasing LoopCost (ties keep the original loop order).
     */
    std::vector<Node *> memoryOrder() const;

    /** Symbolic trip count of a loop in this nest's context. */
    Poly trip(const Node *loop) const { return tripModel_.trip(loop); }

    const ModelParams &params() const { return params_; }

  private:
    const Program &prog_;
    ModelParams params_;
    Node *root_;
    std::vector<Node *> loops_;
    std::vector<NestRef> refs_;
    DependenceGraph graph_;
    TripModel tripModel_;
    /** Candidate-independent state for one statement sub-nest: the
     *  subset of refs_ bottoming out at `inner` plus its spatial
     *  pairs, computed once and shared across every candidate loop. */
    struct ScopedRefs
    {
        std::vector<int> refIndices;
        std::vector<NestRef> subset;
        std::vector<SpatialPair> spatial;
    };
    const ScopedRefs &scopedRefs(const Node *inner) const;
    const std::vector<SpatialPair> &spatialPairs() const;

    mutable std::map<const Node *, std::vector<RefGroup>> groupCache_;
    mutable std::map<std::pair<const Node *, const Node *>, ScopedGroups>
        scopedCache_;
    mutable std::map<const Node *, Poly> costCache_;
    mutable std::map<const Node *, ScopedRefs> scopedRefsCache_;
    mutable bool spatialReady_ = false;
    mutable std::vector<SpatialPair> spatialPairs_;
};

/**
 * Cache-line cost of the nest as currently ordered: the sum, over the
 * loops that directly contain statements, of the group costs with that
 * loop as the (actual) innermost.
 */
Poly nestCost(const NestAnalysis &na);

/**
 * The "ideal" cost of Section 5.2: every statement gets the innermost
 * loop that minimizes its groups' cost, ignoring legality.
 */
Poly idealNestCost(const NestAnalysis &na);

/** True when the cheapest-cost loop is an innermost loop already. */
bool innermostInMemoryOrder(const NestAnalysis &na);

/** True when the nest's loop order equals memory order. */
bool nestInMemoryOrder(const NestAnalysis &na);

} // namespace memoria

#endif // MEMORIA_MODEL_LOOPCOST_HH
