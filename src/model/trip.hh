/**
 * @file
 * Symbolic trip counts and bound ranges as cost polynomials.
 */

#ifndef MEMORIA_MODEL_TRIP_HH
#define MEMORIA_MODEL_TRIP_HH

#include <map>

#include "ir/program.hh"
#include "model/params.hh"
#include "support/poly.hh"

namespace memoria {

/** A symbolic interval of polynomial bounds. */
struct PolyRange
{
    Poly lo;
    Poly hi;
};

/**
 * Computes symbolic trip counts for loops whose bounds may reference
 * symbolic parameters and outer loop variables (triangular nests).
 *
 * Loop variables are resolved through `loopOf`, a map from VarId to the
 * defining loop node, built from the enclosing-loop context.
 */
class TripModel
{
  public:
    TripModel(const Program &prog, ModelParams params);

    /** Register the defining loop of a variable (outer context). */
    void addLoop(const Node *loop);

    /** Symbolic range of an affine expression. */
    PolyRange rangeOf(const AffineExpr &e) const;

    /** Symbolic trip count of a loop: (ub - lb + step) / step, folded
     *  per the triangular policy. */
    Poly trip(const Node *loop) const;

  private:
    PolyRange varRange(VarId v) const;

    const Program &prog_;
    ModelParams params_;
    std::map<VarId, const Node *> loopOf_;
};

} // namespace memoria

#endif // MEMORIA_MODEL_TRIP_HH
