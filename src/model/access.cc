#include "model/access.hh"

#include <set>

namespace memoria {

AccessStats &
AccessStats::operator+=(const AccessStats &o)
{
    invGroups += o.invGroups;
    unitGroups += o.unitGroups;
    noneGroups += o.noneGroups;
    spatialGroups += o.spatialGroups;
    invRefs += o.invRefs;
    unitRefs += o.unitRefs;
    noneRefs += o.noneRefs;
    return *this;
}

namespace {

double
pct(int part, int whole)
{
    return whole == 0 ? 0.0 : 100.0 * part / whole;
}

double
ratio(int refs, int groups)
{
    return groups == 0 ? 0.0 : static_cast<double>(refs) / groups;
}

} // namespace

double AccessStats::pctInv() const { return pct(invGroups, totalGroups()); }
double AccessStats::pctUnit() const { return pct(unitGroups, totalGroups()); }
double AccessStats::pctNone() const { return pct(noneGroups, totalGroups()); }

double
AccessStats::pctGroupSpatial() const
{
    return pct(spatialGroups, totalGroups());
}

double
AccessStats::refsPerInvGroup() const
{
    return ratio(invRefs, invGroups);
}

double
AccessStats::refsPerUnitGroup() const
{
    return ratio(unitRefs, unitGroups);
}

double
AccessStats::refsPerNoneGroup() const
{
    return ratio(noneRefs, noneGroups);
}

double
AccessStats::refsPerGroup() const
{
    return ratio(totalRefs(), totalGroups());
}

AccessStats
gatherAccessStats(const NestAnalysis &na)
{
    AccessStats stats;

    // The loops that directly enclose statements.
    std::set<const Node *> innermosts;
    for (const auto &ref : na.refs())
        if (!ref.loops.empty())
            innermosts.insert(ref.loops.back());

    for (const Node *inner : innermosts) {
        const auto &sg = na.groupsWithin(inner, inner);
        for (const auto &g : sg.groups) {
            const NestRef &rep =
                na.refs()[sg.refIndices[g.representative]];
            int members = static_cast<int>(g.members.size());
            switch (na.classify(rep, inner)) {
              case Reuse::Invariant:
                stats.invGroups++;
                stats.invRefs += members;
                break;
              case Reuse::Consecutive:
                stats.unitGroups++;
                stats.unitRefs += members;
                break;
              case Reuse::None:
                stats.noneGroups++;
                stats.noneRefs += members;
                break;
            }
            if (g.groupSpatial)
                stats.spatialGroups++;
        }
    }
    return stats;
}

} // namespace memoria
