/**
 * @file
 * The RefGroup algorithm (Section 3.3 of the paper).
 *
 * Two references belong to the same reference group with respect to a
 * candidate loop l when they exhibit group-temporal reuse (a
 * loop-independent dependence, or a dependence carried by l with a small
 * constant distance and zeros elsewhere) or group-spatial reuse (same
 * array, first subscripts differing by at most a cache line, all other
 * subscripts identical).
 */

#ifndef MEMORIA_MODEL_REFGROUP_HH
#define MEMORIA_MODEL_REFGROUP_HH

#include <vector>

#include "dependence/graph.hh"
#include "ir/program.hh"
#include "model/params.hh"

namespace memoria {

/** One reference occurrence inside an analyzed nest. */
struct NestRef
{
    const Statement *stmt = nullptr;
    const ArrayRef *ref = nullptr;
    bool isWrite = false;
    /** Enclosing loops within the analyzed scope, outermost first. */
    std::vector<Node *> loops;
};

/** A reference group with respect to some candidate loop. */
struct RefGroup
{
    /** Indices into the nest's reference list. */
    std::vector<int> members;

    /** The deepest-nesting member (index into members' target list). */
    int representative = -1;

    /** True when condition 2 joined members with distinct first
     *  subscripts (group-spatial reuse). */
    bool groupSpatial = false;
};

/** One candidate-independent group-spatial pair (condition 2). */
struct SpatialPair
{
    /** Indices into the reference list the pair was computed over. */
    int a = 0;
    int b = 0;
    /** True when the first subscripts differ (the members can sit on
     *  distinct elements of the same cache line). */
    bool nonzeroDiff = false;
};

/**
 * The candidate-independent half of the RefGroup partition: every pair
 * of references exhibiting group-spatial reuse. The scan is O(n^2) in
 * the reference count and does not depend on the candidate loop, so
 * callers evaluating many candidates over one reference set should
 * compute the pairs once and pass them to computeRefGroups.
 */
std::vector<SpatialPair>
computeSpatialPairs(const Program &prog, const std::vector<NestRef> &refs,
                    const ModelParams &params);

/**
 * Partition `refs` into reference groups with respect to `candidate`.
 *
 * `edges` must be the dependence edges among the scope's statements
 * (input dependences included); cls is taken per-array from
 * params.lineBytes / element size. When `spatialPairs` is non-null it
 * must be the result of computeSpatialPairs over the same `refs`; when
 * null the pairs are computed in place.
 */
std::vector<RefGroup>
computeRefGroups(const Program &prog, const std::vector<NestRef> &refs,
                 const std::vector<DepEdge> &edges, const Node *candidate,
                 const ModelParams &params,
                 const std::vector<SpatialPair> *spatialPairs = nullptr);

} // namespace memoria

#endif // MEMORIA_MODEL_REFGROUP_HH
