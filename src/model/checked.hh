/**
 * @file
 * Overflow-guarded arithmetic for the symbolic cost model.
 *
 * Stride and trip-count math multiplies user-controlled quantities
 * (steps, subscript coefficients, loop bounds); a hostile or merely
 * huge input program can overflow int64 or push a Poly coefficient to
 * infinity. These helpers saturate instead of wrapping (signed overflow
 * is UB) and emit a one-time warning per process so a clamped cost is
 * visible but not noisy. Saturated costs stay ordered sensibly — a
 * clamped value compares as "enormous", which is the right answer for
 * a cost model choosing the cheaper alternative.
 */

#ifndef MEMORIA_MODEL_CHECKED_HH
#define MEMORIA_MODEL_CHECKED_HH

#include <cstdint>

#include "support/poly.hh"

namespace memoria {

/** a * b, saturating at the int64 limits on overflow. */
int64_t checkedMul(int64_t a, int64_t b);

/** a + b, saturating at the int64 limits on overflow. */
int64_t checkedAdd(int64_t a, int64_t b);

/** |a|, saturating at INT64_MAX (|INT64_MIN| overflows). */
int64_t checkedAbs(int64_t a);

/** Clamp non-finite coefficients to a huge finite magnitude. */
Poly saturatePoly(Poly p);

/** p.eval(n), clamped to a finite value. */
double checkedEval(const Poly &p, double n);

} // namespace memoria

#endif // MEMORIA_MODEL_CHECKED_HH
