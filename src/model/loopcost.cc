#include "model/loopcost.hh"

#include <algorithm>
#include <cstdlib>

#include "model/checked.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace memoria {

const char *
reuseName(Reuse r)
{
    switch (r) {
      case Reuse::Invariant:
        return "invariant";
      case Reuse::Consecutive:
        return "consecutive";
      case Reuse::None:
        return "none";
    }
    return "?";
}

NestAnalysis::NestAnalysis(const Program &prog, Node *root,
                           ModelParams params,
                           const std::vector<Node *> &outerLoops)
    : prog_(prog), params_(params), root_(root),
      graph_(prog, collectStmts(root)), tripModel_(prog, params)
{
    for (Node *outer : outerLoops)
        tripModel_.addLoop(outer);
    loops_ = collectLoops(root_);
    for (Node *l : loops_)
        tripModel_.addLoop(l);

    for (const auto &ctx : graph_.scope()) {
        for (const auto &occ : collectRefs(ctx.node->stmt)) {
            NestRef r;
            r.stmt = occ.stmt;
            r.ref = occ.ref;
            r.isWrite = occ.isWrite;
            r.loops = ctx.loops;
            refs_.push_back(std::move(r));
        }
    }
}

const std::vector<SpatialPair> &
NestAnalysis::spatialPairs() const
{
    if (!spatialReady_) {
        spatialPairs_ = computeSpatialPairs(prog_, refs_, params_);
        spatialReady_ = true;
    }
    return spatialPairs_;
}

const NestAnalysis::ScopedRefs &
NestAnalysis::scopedRefs(const Node *inner) const
{
    auto it = scopedRefsCache_.find(inner);
    if (it != scopedRefsCache_.end())
        return it->second;

    ScopedRefs sr;
    for (size_t i = 0; i < refs_.size(); ++i) {
        if (!refs_[i].loops.empty() && refs_[i].loops.back() == inner) {
            sr.refIndices.push_back(static_cast<int>(i));
            sr.subset.push_back(refs_[i]);
        }
    }
    sr.spatial = computeSpatialPairs(prog_, sr.subset, params_);
    return scopedRefsCache_.emplace(inner, std::move(sr)).first->second;
}

const NestAnalysis::ScopedGroups &
NestAnalysis::groupsWithin(const Node *candidate, const Node *inner) const
{
    auto key = std::make_pair(candidate, inner);
    auto it = scopedCache_.find(key);
    if (it != scopedCache_.end())
        return it->second;

    const ScopedRefs &sr = scopedRefs(inner);
    ScopedGroups sg;
    sg.refIndices = sr.refIndices;
    sg.groups = computeRefGroups(prog_, sr.subset, graph_.edges(),
                                 candidate, params_, &sr.spatial);
    static obs::Counter &cComputed =
        obs::counter("model.refgroup.computations");
    static obs::Counter &cFormed =
        obs::counter("model.refgroup.groups_formed");
    ++cComputed;
    cFormed += sg.groups.size();
    return scopedCache_.emplace(key, std::move(sg)).first->second;
}

const std::vector<RefGroup> &
NestAnalysis::groups(const Node *candidate) const
{
    auto it = groupCache_.find(candidate);
    if (it == groupCache_.end()) {
        it = groupCache_
                 .emplace(candidate,
                          computeRefGroups(prog_, refs_, graph_.edges(),
                                           candidate, params_,
                                           &spatialPairs()))
                 .first;
        static obs::Counter &cComputed =
            obs::counter("model.refgroup.computations");
        static obs::Counter &cFormed =
            obs::counter("model.refgroup.groups_formed");
        ++cComputed;
        cFormed += it->second.size();
    }
    return it->second;
}

Reuse
NestAnalysis::classify(const NestRef &ref, const Node *candidate) const
{
    // A loop that does not enclose the reference cannot grant it reuse.
    bool enclosed = std::find(ref.loops.begin(), ref.loops.end(),
                              candidate) != ref.loops.end();
    if (!enclosed)
        return Reuse::None;

    VarId v = candidate->var;
    const auto &subs = ref.ref->subs;
    if (subs.empty())
        return Reuse::None;

    bool anyUse = false;
    bool tailUse = false;  // uses v in subscripts 2..j (or opaque there)
    for (size_t k = 0; k < subs.size(); ++k) {
        bool uses = subs[k].isAffine() ? subs[k].affine.uses(v) : true;
        anyUse = anyUse || uses;
        if (k > 0)
            tailUse = tailUse || uses;
    }
    if (!anyUse)
        return Reuse::Invariant;
    if (tailUse || !subs[0].isAffine())
        return Reuse::None;

    int64_t coeff = subs[0].affine.coeff(v);
    if (coeff == 0)
        return Reuse::None;  // v only in an opaque position
    int64_t stride = checkedAbs(checkedMul(candidate->step, coeff));
    const ArrayDecl &decl = prog_.arrayDecl(ref.ref->array);
    int64_t cls = std::max(1, params_.lineBytes / decl.elemSize);
    return stride < cls ? Reuse::Consecutive : Reuse::None;
}

Poly
NestAnalysis::refCost(const NestRef &ref, const Node *candidate) const
{
    static obs::Counter &cInvariant =
        obs::counter("model.refcost.invariant");
    static obs::Counter &cConsecutive =
        obs::counter("model.refcost.consecutive");
    static obs::Counter &cNone = obs::counter("model.refcost.none");
    switch (classify(ref, candidate)) {
      case Reuse::Invariant:
        ++cInvariant;
        return Poly(1.0);
      case Reuse::Consecutive: {
        ++cConsecutive;
        int64_t coeff = ref.ref->subs[0].affine.coeff(candidate->var);
        int64_t stride = checkedAbs(checkedMul(candidate->step, coeff));
        const ArrayDecl &decl = prog_.arrayDecl(ref.ref->array);
        int64_t cls = std::max(1, params_.lineBytes / decl.elemSize);
        // trip / (cls / stride)
        return tripModel_.trip(candidate) *
               (static_cast<double>(stride) / static_cast<double>(cls));
      }
      case Reuse::None:
        ++cNone;
        break;
    }
    bool enclosed = std::find(ref.loops.begin(), ref.loops.end(),
                              candidate) != ref.loops.end();
    if (enclosed)
        return tripModel_.trip(candidate);
    // Not enclosed: the candidate cannot change this reference's
    // behaviour; charge one line per iteration of its innermost loop so
    // totals stay comparable across candidates (the term is identical
    // for every candidate outside the reference's loops).
    return ref.loops.empty() ? Poly(1.0)
                             : tripModel_.trip(ref.loops.back());
}

Poly
NestAnalysis::loopCost(const Node *candidate) const
{
    auto it = costCache_.find(candidate);
    if (it != costCache_.end())
        return it->second;

    Poly total;
    for (const auto &g : groups(candidate)) {
        const NestRef &rep = refs_[g.representative];
        Poly cost = refCost(rep, candidate);
        for (Node *h : rep.loops) {
            if (h == candidate)
                continue;
            // When the candidate does not enclose the reference, its
            // innermost own loop already contributed through refCost.
            bool enclosed = std::find(rep.loops.begin(), rep.loops.end(),
                                      candidate) != rep.loops.end();
            if (!enclosed && h == rep.loops.back())
                continue;
            cost *= tripModel_.trip(h);
        }
        total += cost;
    }
    costCache_.emplace(candidate, total);
    return total;
}

std::vector<Node *>
NestAnalysis::memoryOrder() const
{
    std::vector<Node *> order = loops_;
    std::stable_sort(order.begin(), order.end(),
                     [this](Node *a, Node *b) {
                         return loopCost(a) > loopCost(b);
                     });
    return order;
}

namespace {

/** The loops that directly contain statements. */
std::vector<const Node *>
innermostLoops(const NestAnalysis &na)
{
    std::vector<const Node *> out;
    for (const auto &ref : na.refs()) {
        if (ref.loops.empty())
            continue;
        const Node *l = ref.loops.back();
        if (std::find(out.begin(), out.end(), l) == out.end())
            out.push_back(l);
    }
    return out;
}

/** Cost of the statement sub-nest bottoming out at `inner`, grouped
 *  within itself, evaluated with `candidate` as the innermost loop. */
Poly
partialCost(const NestAnalysis &na, const Node *candidate,
            const Node *inner)
{
    Poly total;
    const auto &sg = na.groupsWithin(candidate, inner);
    for (const auto &g : sg.groups) {
        const NestRef &rep =
            na.refs()[sg.refIndices[g.representative]];
        Poly cost = na.refCost(rep, candidate);
        bool enclosed = std::find(rep.loops.begin(), rep.loops.end(),
                                  candidate) != rep.loops.end();
        for (Node *h : rep.loops) {
            if (h == candidate)
                continue;
            if (!enclosed && h == rep.loops.back())
                continue;  // already charged through refCost
            cost *= na.trip(h);
        }
        total += cost;
    }
    return total;
}

} // namespace

Poly
nestCost(const NestAnalysis &na)
{
    Poly total;
    for (const Node *inner : innermostLoops(na))
        total += partialCost(na, inner, inner);
    return total;
}

Poly
idealNestCost(const NestAnalysis &na)
{
    Poly total;
    for (const Node *inner : innermostLoops(na)) {
        bool first = true;
        Poly best;
        for (const Node *cand : na.loops()) {
            Poly c = partialCost(na, cand, inner);
            if (first || c < best) {
                best = c;
                first = false;
            }
        }
        total += best;
    }
    return total;
}

bool
innermostInMemoryOrder(const NestAnalysis &na)
{
    auto mo = na.memoryOrder();
    if (mo.empty())
        return true;
    const Node *cheapest = mo.back();
    for (const auto &kid : cheapest->body)
        if (kid->isLoop())
            return false;
    return true;
}

bool
nestInMemoryOrder(const NestAnalysis &na)
{
    return na.memoryOrder() == na.loops();
}

} // namespace memoria
