#include "model/trip.hh"

#include "model/checked.hh"
#include "support/logging.hh"

namespace memoria {

TripModel::TripModel(const Program &prog, ModelParams params)
    : prog_(prog), params_(params)
{
}

void
TripModel::addLoop(const Node *loop)
{
    MEMORIA_ASSERT(loop->isLoop(), "TripModel::addLoop needs a loop");
    loopOf_[loop->var] = loop;
}

PolyRange
TripModel::varRange(VarId v) const
{
    const VarInfo &info = prog_.varInfo(v);
    if (info.kind == VarKind::Param)
        return {info.paramPoly, info.paramPoly};

    auto it = loopOf_.find(v);
    MEMORIA_ASSERT(it != loopOf_.end(),
                   "no defining loop registered for variable "
                       << info.name);
    const Node *loop = it->second;
    PolyRange lbR = rangeOf(loop->lb);
    PolyRange ubR = rangeOf(loop->ub);
    if (params_.policy == TriangularPolicy::Average) {
        // Point estimate: the mean of the (recursively averaged)
        // bounds, so a triangular DO J = K+1, I gets E[I] - E[K] + 1
        // iterations.
        Poly mid = (lbR.lo + ubR.hi) / 2.0;
        return {mid, mid};
    }
    // Values visited lie between the bounds regardless of step sign.
    Poly lo = lbR.lo <= ubR.lo ? lbR.lo : ubR.lo;
    Poly hi = lbR.hi >= ubR.hi ? lbR.hi : ubR.hi;
    return {lo, hi};
}

PolyRange
TripModel::rangeOf(const AffineExpr &e) const
{
    PolyRange r{Poly(static_cast<double>(e.constant())),
                Poly(static_cast<double>(e.constant()))};
    for (const auto &[v, c] : e.terms()) {
        PolyRange vr = varRange(v);
        double cd = static_cast<double>(c);
        if (c >= 0) {
            r.lo += vr.lo * cd;
            r.hi += vr.hi * cd;
        } else {
            r.lo += vr.hi * cd;
            r.hi += vr.lo * cd;
        }
    }
    return r;
}

Poly
TripModel::trip(const Node *loop) const
{
    PolyRange lbR = rangeOf(loop->lb);
    PolyRange ubR = rangeOf(loop->ub);
    double step = static_cast<double>(loop->step);

    Poly lb, ub;
    if (params_.policy == TriangularPolicy::Average) {
        lb = (lbR.lo + lbR.hi) / 2.0;
        ub = (ubR.lo + ubR.hi) / 2.0;
    } else if (loop->step > 0) {
        // Maximize (ub - lb + step) / step.
        lb = lbR.lo;
        ub = ubR.hi;
    } else {
        lb = lbR.hi;
        ub = ubR.lo;
    }
    return saturatePoly((ub - lb + Poly(step)) / step);
}

} // namespace memoria
