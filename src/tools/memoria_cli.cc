/**
 * @file
 * memoria — command-line driver.
 *
 * Runs the pipeline on the built-in kernels and corpus programs:
 *
 *   memoria list
 *   memoria print <program> [N]
 *   memoria analyze <program> [N]      LoopCost table + memory order
 *   memoria optimize <program> [N]     Compound + before/after source
 *   memoria simulate <program> [N]     hit rates + speedup on both caches
 *   memoria reuse <program> [N]        reuse-distance profile
 *   memoria trace <program> [N]        Compound decision provenance
 *   memoria fuzz [--seed N] [--count K] [--jobs N]
 *                                      differential pipeline fuzzing
 *   memoria diffinterp [--seed N] [--count K]
 *                                      tree-vs-tape interpreter
 *                                      differential (CI hard gate)
 *   memoria batch [programs...]        resilient batch pipeline
 *   memoria serve [--port N] [--socket P]  long-running compile service
 *   memoria reduce <bundle|file>       re-minimize a failure offline
 *   memoria bench [--json]             pipeline microbenchmarks
 *   memoria version                    build identity
 *
 * `memoria batch` runs the whole pipeline over many programs with
 * per-program crash isolation, budgets, and the degradation ladder
 * (docs/ROBUSTNESS.md):
 *
 *   --all                  kernels + 35-program corpus + examples/*.mem
 *   --stdin                read program names / file paths from stdin
 *   --jobs N               worker threads (default: up to 4)
 *   --deadline-ms N        wall-clock budget per ladder attempt
 *   --max-iterations N     interpreter iteration budget per attempt
 *   --max-ir-nodes N       IR node budget per program version
 *   --json                 print the machine-readable batch report
 *   --fault SPEC           arm one fault site: site[:action[:N]][@prog]
 *   --fault-sweep          arm every site in turn; verify containment
 *   --list-faults          print the registered fault-site catalog
 *   --incidents            minimize contained failures into bundles
 *   --caches NAMES         cache geometries to sweep per survivor:
 *                          i860 (default), rs6000, or both — all fed
 *                          from one interpreter pass per program
 *
 * `memoria bench` times the pipeline's hot paths (parse, validate,
 * Compound, oracle, simulation, the multi-config sweep, an end-to-end
 * corpus batch) with warmup and repetition; see docs/PERFORMANCE.md:
 *
 *   --reps N               timed repetitions per benchmark (default 5)
 *   --warmup N             untimed warmup repetitions (default 1)
 *   --filter S             run benchmarks whose name contains S
 *   --json                 emit the stable BENCH.json schema
 *
 * `memoria serve` reads JSON-lines requests from stdin (or serves TCP /
 * Unix-socket clients with --port / --socket) and answers each with
 * exactly one JSON response; see docs/SERVING.md:
 *
 *   --jobs N --queue N     worker pool size, admission-queue bound
 *   --deadline-ms N        default per-request budget
 *   --max-deadline-ms N    clamp on client-supplied deadlines
 *   --drain-deadline-ms N  grace for queued work during shutdown
 *   --port N               TCP (0 picks an ephemeral port)
 *   --host H               TCP bind address (default 127.0.0.1)
 *   --socket PATH          Unix-domain socket
 *   --allow-faults         honor per-request fault-injection hooks
 *   --no-incidents         don't write incident bundles
 *   --incidents-dir DIR    bundle root (default artifacts/incidents)
 *   --workers N            fork N shard-worker processes behind a
 *                          crash-respawn supervisor (0 = in-process)
 *   --journal PATH|none    write-ahead admission journal (default
 *                          artifacts/serve/journal.jsonl with --workers)
 *   --heartbeat-ms N       worker liveness probe cadence (default 500)
 *   --max-request-bytes N  reject longer request lines up front
 *   --cache-entries N      result-cache entry bound (default 512)
 *   --cache-bytes N        result-cache byte bound (default 32 MiB)
 *   --no-cache             disable the result cache entirely
 *   --cache-snapshot-dir DIR
 *                          durable cache snapshots (cache-shardK.snap
 *                          per shard; warm restarts load them back)
 *   --cache-snapshot-interval-ms N
 *                          periodic snapshot cadence (also written at
 *                          drain; 0 = drain-only)
 *
 * `memoria reduce` re-minimizes an incident bundle directory (using its
 * recorded failure signature and fault plan) or a bare .mem file (the
 * signature is whatever contained failure the pipeline exhibits),
 * with offline-sized budgets (--deadline-ms, --max-checks).
 *
 * `memoria fuzz` failures are minimized into incident bundles under
 * artifacts/incidents/ (each regenerable from its seed alone); disable
 * with --no-incidents.
 *
 * Global flags (accepted anywhere on the command line):
 *
 *   --trace=<file.jsonl>   write the structured event trace as JSON lines
 *   --trace                write a human-readable trace to stderr
 *   --stats                dump the stats registry as a table at exit
 *   --stats=json           dump the stats registry as JSON at exit
 *   -v / -q                raise / silence log verbosity
 *                          (also: MEMORIA_LOG_LEVEL=quiet|warn|info|debug)
 *   --help                 print usage and exit 0
 *
 * Exit codes: 0 = success, 1 = pipeline failure (bad input program,
 * fuzzing or sweep found failures), 2 = usage error. A `batch` run that
 * *contains* per-program failures still exits 0 — containment is the
 * command's contract; parse the JSON report for per-program status.
 *
 * <program> is a kernel name (matmul-ijk, matmul-jki, cholesky, adi,
 * erlebacher, gmtry, simple, vpenta, jacobi), a corpus program name
 * (adm, arc2d, ..., wave), or a path to a source file written in the
 * loop-nest language (see src/frontend/parser.hh and examples/stencil.mem).
 */

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <fstream>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "cachesim/reuse.hh"
#include "driver/fuzzcheck.hh"
#include "perf/bench.hh"
#include "frontend/parser.hh"
#include "harness/batch.hh"
#include "harness/fault.hh"
#include "harness/incident.hh"
#include "serve/listener.hh"
#include "serve/supervisor.hh"
#include "serve/top.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/signals.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "support/version.hh"
#include "driver/memoria.hh"
#include "ir/printer.hh"
#include "model/loopcost.hh"
#include "suite/corpus.hh"
#include "suite/kernels.hh"
#include "support/table.hh"

namespace memoria {
namespace {

using Maker = std::function<Program(int64_t)>;

const std::map<std::string, Maker> &
kernels()
{
    static const std::map<std::string, Maker> table = {
        {"matmul-ijk", [](int64_t n) { return makeMatmul("IJK", n); }},
        {"matmul-ikj", [](int64_t n) { return makeMatmul("IKJ", n); }},
        {"matmul-jki", [](int64_t n) { return makeMatmul("JKI", n); }},
        {"cholesky", [](int64_t n) { return makeCholeskyKIJ(n); }},
        {"adi", [](int64_t n) { return makeAdiScalarized(n); }},
        {"erlebacher",
         [](int64_t n) { return makeErlebacherDistributed(n); }},
        {"gmtry", [](int64_t n) { return makeGmtry(n); }},
        {"simple", [](int64_t n) { return makeSimpleHydro(n); }},
        {"vpenta", [](int64_t n) { return makeVpenta(n); }},
        {"jacobi", [](int64_t n) { return makeJacobiBadOrder(n); }},
    };
    return table;
}

/** Corpus programs need extent >= 8 to exercise their nests; smaller
 *  requests are clamped, with a warning so the surprise is visible. */
int64_t
clampCorpusExtent(const std::string &name, int64_t n)
{
    if (n < 8) {
        warn("corpus program '" + name + "': requested size " +
             std::to_string(n) + " clamped to 8");
        return 8;
    }
    return n;
}

/**
 * Resolve a program by name: kernel, corpus program, or source file.
 * Failures come back as a Diag — the CLI reports them and exits 1
 * instead of aborting mid-pipeline.
 */
Result<Program>
resolve(const std::string &name, int64_t n)
{
    auto it = kernels().find(name);
    if (it != kernels().end())
        return Result<Program>(it->second(n));
    for (const auto &spec : corpusSpecs())
        if (spec.name == name)
            return Result<Program>(
                buildCorpusProgram(spec, clampCorpusExtent(name, n)));

    // Otherwise treat the name as a source file in the loop-nest
    // language (see src/frontend/parser.hh).
    std::ifstream in(name);
    if (in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        ParseError err;
        auto p = parseProgram(buf.str(), &err);
        if (!p)
            return Result<Program>::err(Diag::error(
                "parse.error", name + ": " + err.str()));
        return Result<Program>(std::move(*p));
    }
    return Result<Program>::err(
        Diag::error("cli.unknown_program",
                    "unknown program or file '" + name +
                        "'; try `memoria list`"));
}

/** Same resolution for one batch input; loading stays lazy so failures
 *  are contained inside the batch isolation boundary. */
harness::BatchInput
resolveBatchInput(const std::string &name)
{
    auto it = kernels().find(name);
    if (it != kernels().end())
        return {name, [make = it->second]() {
                    return Result<Program>(make(24));
                }};
    for (const auto &spec : corpusSpecs())
        if (spec.name == name)
            return {name, [spec]() {
                        return Result<Program>(
                            buildCorpusProgram(spec, 16));
                    }};
    return harness::fileInput(name);
}

int
cmdList()
{
    std::cout << "kernels:\n";
    for (const auto &[name, mk] : kernels())
        std::cout << "  " << name << "\n";
    std::cout << "corpus programs:\n ";
    for (const auto &spec : corpusSpecs())
        std::cout << " " << spec.name;
    std::cout << "\n";
    return 0;
}

int
cmdAnalyze(Program prog)
{
    ModelParams params;
    std::cout << printProgram(prog) << "\n";
    int nest = 0;
    for (auto &top : prog.body) {
        if (!top->isLoop() || loopDepth(*top) < 2)
            continue;
        NestAnalysis na(prog, top.get(), params);
        std::cout << "nest " << nest++ << ": LoopCost per candidate\n";
        for (Node *l : na.loops()) {
            std::cout << "  " << prog.varName(l->var) << ": "
                      << na.loopCost(l).str() << "\n";
        }
        std::cout << "  memory order: ";
        for (Node *l : na.memoryOrder())
            std::cout << prog.varName(l->var);
        std::cout << (nestInMemoryOrder(na) ? " (already)" : "")
                  << "\n";
    }
    return 0;
}

int
cmdOptimize(Program prog)
{
    ModelParams params;
    OptimizedProgram opt = optimizeProgram(prog, params);
    std::cout << "--- original ---\n" << printProgram(opt.original)
              << "\n--- transformed ---\n"
              << printProgram(opt.transformed);
    std::cout << "nests: " << opt.report.nests
              << "  in memory order: " << opt.report.nestsOrig << "+"
              << opt.report.nestsPerm << "  failed: "
              << opt.report.nestsFail
              << "  fused: " << opt.report.fusion.fused
              << "  distributed: " << opt.report.distributions << "\n";
    std::cout << "semantics preserved: "
              << (runChecksum(opt.original) ==
                          runChecksum(opt.transformed)
                      ? "yes"
                      : "NO")
              << "\n";
    return 0;
}

int
cmdSimulate(Program prog)
{
    ModelParams params;
    OptimizedProgram opt = optimizeProgram(prog, params);
    TextTable t({"cache", "whole orig hit%", "whole final hit%",
                 "speedup"});
    for (const CacheConfig &cfg :
         {CacheConfig::rs6000(), CacheConfig::i860()}) {
        HitRates r = simulateHitRates(opt, cfg);
        Performance perf = simulatePerformance(opt, cfg);
        t.addRow({cfg.name, TextTable::num(r.wholeOrig, 2),
                  TextTable::num(r.wholeFinal, 2),
                  TextTable::num(perf.speedup(), 2)});
    }
    std::cout << t.str();
    return 0;
}

int
cmdReuse(Program prog)
{
    ModelParams params;
    OptimizedProgram opt = optimizeProgram(prog, params);
    auto profile = [](Program &p) {
        ReuseDistanceAnalyzer rd(32);
        Interpreter interp(p);
        interp.run(&rd);
        return rd;
    };
    ReuseDistanceAnalyzer r0 = profile(opt.original);
    ReuseDistanceAnalyzer r1 = profile(opt.transformed);
    std::cout << "mean reuse distance: "
              << TextTable::num(r0.meanDistance(), 1) << " -> "
              << TextTable::num(r1.meanDistance(), 1) << " lines\n";
    TextTable t({"capacity (lines)", "orig miss%", "final miss%"});
    for (uint64_t cap : {16, 64, 256, 1024}) {
        t.addRow({std::to_string(cap),
                  TextTable::num(100.0 * r0.missRatio(cap), 1),
                  TextTable::num(100.0 * r1.missRatio(cap), 1)});
    }
    std::cout << t.str();
    return 0;
}

/** Decision provenance: one row per nest with Compound's choice. */
int
cmdTrace(Program prog)
{
    ModelParams params;
    OptimizedProgram opt = optimizeProgram(prog, params);

    TextTable t({"nest", "depth", "strategy", "verify", "fail",
                 "orig cost", "final cost", "ideal cost"});
    int nest = 0;
    for (const NestReport &rep : opt.compound.nests) {
        t.addRow({std::to_string(nest++), std::to_string(rep.depth),
                  nestStrategyName(rep),
                  rep.rolledBack ? "ROLLED-BACK" : "ok",
                  permuteFailName(rep.fail), rep.origCost.str(),
                  rep.finalCost.str(), rep.idealCost.str()});
    }
    std::cout << t.str();
    std::cout << "nests: " << opt.report.nests
              << "  already in memory order: " << opt.report.nestsOrig
              << "  transformed into memory order: "
              << opt.report.nestsPerm
              << "  failed: " << opt.report.nestsFail << "\n";
    std::cout << "verify failures (rolled back): "
              << opt.report.failVerify << "\n";

    // Confirm the decisions in the cache simulator; this also fills the
    // cachesim.* stats counters so --stats reconciles with the table.
    HitRates rates = simulateHitRates(opt, CacheConfig::i860());
    std::cout << "whole-program hit% (warm, i860): "
              << TextTable::num(rates.wholeOrig, 2) << " -> "
              << TextTable::num(rates.wholeFinal, 2) << "\n";
    return 0;
}


/** Global flags pulled out of argv before command dispatch. */
struct Options
{
    std::vector<std::string> positional;
    std::string error;         ///< usage error; non-empty = exit 2
    bool help = false;         ///< --help
    bool version = false;      ///< --version
    std::string traceFile;     ///< --trace=<file.jsonl>
    bool traceText = false;    ///< bare --trace
    bool statsText = false;    ///< --stats
    bool statsJson = false;    ///< --stats=json
    int verbosity = 0;         ///< -v count minus -q count
    bool quiet = false;
    uint64_t fuzzSeed = 1;     ///< fuzz: --seed
    int fuzzCount = 100;       ///< fuzz: --count
    std::string interp;        ///< --interp tree|tape (global)

    // batch
    bool batchAll = false;        ///< --all
    bool batchStdin = false;      ///< --stdin
    int jobs = 0;                 ///< --jobs (0 = auto)
    int64_t deadlineMs = 0;       ///< --deadline-ms
    int64_t maxIterations = 0;    ///< --max-iterations
    int64_t maxIrNodes = 0;       ///< --max-ir-nodes
    bool jsonOut = false;         ///< --json
    std::string faultSpec;        ///< --fault SPEC
    bool faultSweep = false;      ///< --fault-sweep
    bool listFaults = false;      ///< --list-faults
    std::string caches;           ///< --caches i860|rs6000|both

    // bench
    int benchReps = 5;            ///< --reps
    int benchWarmup = 1;          ///< --warmup
    std::string benchFilter;      ///< --filter

    // incidents (batch/fuzz/serve/reduce)
    bool incidents = false;       ///< batch: --incidents
    bool noIncidents = false;     ///< fuzz/serve: --no-incidents
    std::string incidentsDir;     ///< --incidents-dir DIR
    int maxChecks = 0;            ///< reduce: --max-checks

    // serve
    int queueCapacity = 0;        ///< --queue
    int64_t clientCap = 0;        ///< --client-cap (0 = off)
    int64_t ageMs = 0;            ///< --age-ms CoDel target (0 = off)
    int64_t rssSoftMb = 0;        ///< --rss-soft-mb (0 = off)
    int64_t rssHardMb = 0;        ///< --rss-hard-mb (0 = off)
    int64_t maxDeadlineMs = 0;    ///< --max-deadline-ms
    int64_t drainDeadlineMs = 0;  ///< --drain-deadline-ms
    int64_t retryAfterMs = 0;     ///< --retry-after-ms
    int port = -1;                ///< --port (-1 off, 0 ephemeral)
    std::string host = "127.0.0.1";  ///< --host
    std::string socketPath;       ///< --socket PATH
    bool allowFaults = false;     ///< --allow-faults

    // serve metrics export
    int metricsPort = -1;         ///< --metrics-port (-1 off)
    int64_t metricsIntervalMs = 0;///< --metrics-interval-ms
    std::string metricsFile;      ///< --metrics-file PATH

    // serve supervision (multi-process shard workers)
    int workers = 0;              ///< --workers (0 = single-process)
    int64_t maxRequestsPerWorker = 0;  ///< --max-requests-per-worker
    std::string journalPath;      ///< --journal PATH|none
    int64_t heartbeatMs = 0;      ///< --heartbeat-ms
    int64_t maxRequestBytes = 0;  ///< --max-request-bytes
    int workerFd = -1;            ///< --worker-fd (internal)
    int shard = -1;               ///< --shard (internal)
    std::string argv0;            ///< how this binary was invoked

    // serve result cache
    int64_t cacheEntries = -1;    ///< --cache-entries (-1 = default)
    int64_t cacheBytes = 0;       ///< --cache-bytes (0 = default)
    bool noCache = false;         ///< --no-cache
    std::string cacheSnapshotDir; ///< --cache-snapshot-dir DIR
    int64_t cacheSnapshotIntervalMs = 0;  ///< --cache-snapshot-interval-ms

    // top
    std::string topFile;          ///< top: --file (tail snapshots)
    int64_t topIntervalMs = 1000; ///< top: --interval-ms
    bool topOnce = false;         ///< top: --once
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    if (argc > 0)
        opts.argv0 = argv[0];

    // Flags taking a value, as "--flag V" or "--flag=V".
    const std::map<std::string, std::function<void(const std::string &)>>
        valued = {
            {"--seed",
             [&](const std::string &v) {
                 opts.fuzzSeed =
                     static_cast<uint64_t>(std::atoll(v.c_str()));
             }},
            {"--count",
             [&](const std::string &v) {
                 opts.fuzzCount = std::atoi(v.c_str());
             }},
            {"--interp",
             [&](const std::string &v) { opts.interp = v; }},
            {"--jobs",
             [&](const std::string &v) {
                 opts.jobs = std::atoi(v.c_str());
             }},
            {"--deadline-ms",
             [&](const std::string &v) {
                 opts.deadlineMs = std::atoll(v.c_str());
             }},
            {"--max-iterations",
             [&](const std::string &v) {
                 opts.maxIterations = std::atoll(v.c_str());
             }},
            {"--max-ir-nodes",
             [&](const std::string &v) {
                 opts.maxIrNodes = std::atoll(v.c_str());
             }},
            {"--fault",
             [&](const std::string &v) { opts.faultSpec = v; }},
            {"--caches",
             [&](const std::string &v) { opts.caches = v; }},
            {"--reps",
             [&](const std::string &v) {
                 opts.benchReps = std::atoi(v.c_str());
             }},
            {"--warmup",
             [&](const std::string &v) {
                 opts.benchWarmup = std::atoi(v.c_str());
             }},
            {"--filter",
             [&](const std::string &v) { opts.benchFilter = v; }},
            {"--incidents-dir",
             [&](const std::string &v) { opts.incidentsDir = v; }},
            {"--max-checks",
             [&](const std::string &v) {
                 opts.maxChecks = std::atoi(v.c_str());
             }},
            {"--queue",
             [&](const std::string &v) {
                 opts.queueCapacity = std::atoi(v.c_str());
             }},
            {"--client-cap",
             [&](const std::string &v) {
                 opts.clientCap = std::atoll(v.c_str());
             }},
            {"--age-ms",
             [&](const std::string &v) {
                 opts.ageMs = std::atoll(v.c_str());
             }},
            {"--rss-soft-mb",
             [&](const std::string &v) {
                 opts.rssSoftMb = std::atoll(v.c_str());
             }},
            {"--rss-hard-mb",
             [&](const std::string &v) {
                 opts.rssHardMb = std::atoll(v.c_str());
             }},
            {"--max-requests-per-worker",
             [&](const std::string &v) {
                 opts.maxRequestsPerWorker = std::atoll(v.c_str());
             }},
            {"--max-deadline-ms",
             [&](const std::string &v) {
                 opts.maxDeadlineMs = std::atoll(v.c_str());
             }},
            {"--drain-deadline-ms",
             [&](const std::string &v) {
                 opts.drainDeadlineMs = std::atoll(v.c_str());
             }},
            {"--retry-after-ms",
             [&](const std::string &v) {
                 opts.retryAfterMs = std::atoll(v.c_str());
             }},
            {"--port",
             [&](const std::string &v) {
                 opts.port = std::atoi(v.c_str());
             }},
            {"--host",
             [&](const std::string &v) { opts.host = v; }},
            {"--socket",
             [&](const std::string &v) { opts.socketPath = v; }},
            {"--metrics-port",
             [&](const std::string &v) {
                 opts.metricsPort = std::atoi(v.c_str());
             }},
            {"--metrics-interval-ms",
             [&](const std::string &v) {
                 opts.metricsIntervalMs = std::atoll(v.c_str());
             }},
            {"--metrics-file",
             [&](const std::string &v) { opts.metricsFile = v; }},
            {"--workers",
             [&](const std::string &v) {
                 opts.workers = std::atoi(v.c_str());
             }},
            {"--journal",
             [&](const std::string &v) { opts.journalPath = v; }},
            {"--heartbeat-ms",
             [&](const std::string &v) {
                 opts.heartbeatMs = std::atoll(v.c_str());
             }},
            {"--max-request-bytes",
             [&](const std::string &v) {
                 opts.maxRequestBytes = std::atoll(v.c_str());
             }},
            {"--cache-entries",
             [&](const std::string &v) {
                 opts.cacheEntries = std::atoll(v.c_str());
             }},
            {"--cache-bytes",
             [&](const std::string &v) {
                 opts.cacheBytes = std::atoll(v.c_str());
             }},
            {"--cache-snapshot-dir",
             [&](const std::string &v) {
                 opts.cacheSnapshotDir = v;
             }},
            {"--cache-snapshot-interval-ms",
             [&](const std::string &v) {
                 opts.cacheSnapshotIntervalMs = std::atoll(v.c_str());
             }},
            {"--worker-fd",
             [&](const std::string &v) {
                 opts.workerFd = std::atoi(v.c_str());
             }},
            {"--shard",
             [&](const std::string &v) {
                 opts.shard = std::atoi(v.c_str());
             }},
            {"--file",
             [&](const std::string &v) { opts.topFile = v; }},
            {"--interval-ms",
             [&](const std::string &v) {
                 opts.topIntervalMs = std::atoll(v.c_str());
             }},
        };

    for (int i = 1; i < argc && opts.error.empty(); ++i) {
        std::string arg = argv[i];
        auto eq = arg.find('=');
        std::string head =
            eq == std::string::npos ? arg : arg.substr(0, eq);
        auto valuedIt = valued.find(head);

        if (arg == "--help" || arg == "-h") {
            opts.help = true;
        } else if (arg == "--version") {
            opts.version = true;
        } else if (arg == "--incidents") {
            opts.incidents = true;
        } else if (arg == "--no-incidents") {
            opts.noIncidents = true;
        } else if (arg == "--allow-faults") {
            opts.allowFaults = true;
        } else if (arg == "--trace") {
            opts.traceText = true;
        } else if (head == "--trace") {
            opts.traceFile = arg.substr(8);
            if (opts.traceFile.empty())
                opts.error = "--trace= needs a file name";
        } else if (arg == "--stats") {
            opts.statsText = true;
        } else if (arg == "--stats=json") {
            opts.statsJson = true;
        } else if (arg == "--all") {
            opts.batchAll = true;
        } else if (arg == "--stdin") {
            opts.batchStdin = true;
        } else if (arg == "--json") {
            opts.jsonOut = true;
        } else if (arg == "--fault-sweep") {
            opts.faultSweep = true;
        } else if (arg == "--list-faults") {
            opts.listFaults = true;
        } else if (arg == "--once") {
            opts.topOnce = true;
        } else if (arg == "--no-cache") {
            opts.noCache = true;
        } else if (valuedIt != valued.end()) {
            if (eq != std::string::npos) {
                valuedIt->second(arg.substr(eq + 1));
            } else if (i + 1 < argc) {
                valuedIt->second(argv[++i]);
            } else {
                opts.error = arg + " needs a value";
            }
        } else if (arg == "-v") {
            ++opts.verbosity;
        } else if (arg == "-q") {
            opts.quiet = true;
        } else if (!arg.empty() && arg[0] == '-' && arg.size() > 1 &&
                   !isdigit(static_cast<unsigned char>(arg[1]))) {
            opts.error = "unknown flag '" + arg + "'";
        } else {
            opts.positional.push_back(std::move(arg));
        }
    }
    return opts;
}

void
applyVerbosity(const Options &opts)
{
    if (opts.quiet) {
        setLogLevel(LogLevel::Quiet);
        return;
    }
    int level = static_cast<int>(logLevel()) + opts.verbosity;
    level = std::min(level, static_cast<int>(LogLevel::Debug));
    setLogLevel(static_cast<LogLevel>(level));
}

const char *
usageText()
{
    return
        "usage: memoria "
        "<list|print|analyze|optimize|simulate|reuse|trace> "
        "[program] [N] [--trace[=file.jsonl]] [--stats[=json]] "
        "[-v] [-q]\n"
        "       memoria fuzz [--seed N] [--count K] [--jobs N] "
        "[--no-incidents]\n"
        "       memoria diffinterp [--seed N] [--count K]\n"
        "       memoria batch [programs...] [--all] [--stdin] "
        "[--jobs N]\n"
        "               [--deadline-ms N] [--max-iterations N] "
        "[--max-ir-nodes N]\n"
        "               [--json] [--fault SPEC] [--fault-sweep] "
        "[--list-faults]\n"
        "               [--incidents] [--incidents-dir DIR] "
        "[--caches i860|rs6000|both]\n"
        "       memoria serve [--jobs N] [--queue N] [--deadline-ms N]"
        " [--port N]\n"
        "               [--host H] [--socket PATH] [--allow-faults]"
        " [--no-incidents]\n"
        "               [--metrics-port N] [--metrics-file PATH] "
        "[--metrics-interval-ms N]\n"
        "               [--workers N] [--journal PATH|none] "
        "[--heartbeat-ms N]\n"
        "               [--max-request-bytes N] [--cache-entries N] "
        "[--cache-bytes N]\n"
        "               [--no-cache] [--cache-snapshot-dir DIR]\n"
        "               [--cache-snapshot-interval-ms N]\n"
        "               [--client-cap N] [--age-ms N] "
        "[--rss-soft-mb N] [--rss-hard-mb N]\n"
        "               [--max-requests-per-worker N]\n"
        "       memoria top [host:port] [--file SNAPSHOTS.jsonl] "
        "[--interval-ms N] [--once]\n"
        "       memoria reduce <bundle-dir|file.mem> [--deadline-ms N]"
        " [--max-checks N]\n"
        "       memoria bench [--reps N] [--warmup N] [--filter S] "
        "[--json]\n"
        "       memoria version | --version\n"
        "       memoria --help\n"
        "global: --interp tree|tape selects the interpreter engine\n"
        "        (default tape; MEMORIA_INTERP env is the fallback)\n"
        "exit codes: 0 ok, 1 pipeline failure, 2 usage error\n";
}

/**
 * Parse --caches: "i860", "rs6000", "both", or a comma-separated list
 * of those names. Empty result means "unrecognized".
 */
std::vector<CacheConfig>
parseCacheConfigs(const std::string &spec)
{
    std::vector<CacheConfig> configs;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item == "i860") {
            configs.push_back(CacheConfig::i860());
        } else if (item == "rs6000") {
            configs.push_back(CacheConfig::rs6000());
        } else if (item == "both") {
            configs.push_back(CacheConfig::rs6000());
            configs.push_back(CacheConfig::i860());
        } else {
            return {};
        }
    }
    return configs;
}

int
cmdBench(const Options &opts)
{
    if (opts.benchReps <= 0 || opts.benchWarmup < 0) {
        std::cerr << "memoria bench: --reps must be positive and "
                     "--warmup non-negative\n";
        return 2;
    }
    perf::BenchOptions bopts;
    bopts.reps = opts.benchReps;
    bopts.warmup = opts.benchWarmup;
    bopts.filter = opts.benchFilter;
    perf::BenchReport report = perf::runBenchSuite(bopts);
    if (report.results.empty()) {
        std::cerr << "memoria bench: no benchmark matches filter '"
                  << opts.benchFilter << "'\n";
        return 1;
    }
    if (opts.jsonOut)
        std::cout << report.toJson() << "\n";
    else
        std::cout << report.toText();
    return 0;
}

void
printBatchSummary(const harness::BatchReport &rep)
{
    TextTable t({"program", "status", "rung", "attempts", "time ms",
                 "hit% orig->final"});
    for (const harness::ProgramOutcome &p : rep.programs) {
        std::string hit = p.simulated
                              ? TextTable::num(p.hitWarmOrig, 1) +
                                    " -> " +
                                    TextTable::num(p.hitWarmFinal, 1)
                              : "-";
        t.addRow({p.name, harness::batchStatusName(p.status),
                  harness::rungName(p.rung), std::to_string(p.attempts),
                  TextTable::num(p.timeMs, 1), hit});
    }
    std::cout << t.str();
    std::cout << "batch: " << rep.programs.size() << " programs  ok: "
              << rep.countWithStatus(harness::BatchStatus::Ok)
              << "  degraded: "
              << rep.countWithStatus(harness::BatchStatus::Degraded)
              << "  diag: "
              << rep.countWithStatus(harness::BatchStatus::Diag)
              << "  timeout: "
              << rep.countWithStatus(harness::BatchStatus::Timeout)
              << "  panic-contained: "
              << rep.countWithStatus(
                     harness::BatchStatus::PanicContained)
              << "  (" << TextTable::num(rep.totalMs, 0) << " ms)\n";
}

/**
 * Arm every registered fault site in turn against the program that hits
 * it, rerun the batch, and verify the injected failure was contained to
 * exactly that program. Returns 0 when every armed site was contained.
 */
int
runFaultSweep(const std::vector<harness::BatchInput> &inputs,
              const harness::BatchOptions &bopts)
{
    harness::clearFault();
    harness::BatchReport clean = harness::runBatch(inputs, bopts);

    int armed = 0, skipped = 0, failed = 0;
    for (const std::string &site : harness::faultSites()) {
        // Pick the first program (stable input order) that actually
        // reaches this site, so arming it is guaranteed to fire.
        const harness::ProgramOutcome *target = nullptr;
        for (const harness::ProgramOutcome &p : clean.programs) {
            auto hit = p.faultHits.find(site);
            if (hit != p.faultHits.end() && hit->second > 0) {
                target = &p;
                break;
            }
        }
        if (!target) {
            ++skipped;
            std::cout << "sweep: " << site
                      << ": never reached by any input, skipped\n";
            continue;
        }

        harness::FaultSpec spec;
        spec.site = site;
        spec.action = harness::FaultAction::Throw;
        spec.onHit = 1;
        spec.program = target->name;
        harness::armFault(spec);
        harness::BatchReport rep = harness::runBatch(inputs, bopts);
        bool fired = harness::armedFaultFired();
        harness::clearFault();
        ++armed;

        std::string why;
        if (!fired)
            why = "armed fault never fired";
        for (size_t i = 0;
             why.empty() && i < rep.programs.size(); ++i) {
            const harness::ProgramOutcome &p = rep.programs[i];
            const harness::ProgramOutcome &base = clean.programs[i];
            if (p.name == target->name) {
                if (!p.contained())
                    why = "injected fault not contained (status " +
                          std::string(
                              harness::batchStatusName(p.status)) +
                          ")";
            } else if (p.status != base.status || p.rung != base.rung) {
                why = "bystander '" + p.name + "' changed: " +
                      harness::batchStatusName(base.status) + "/" +
                      harness::rungName(base.rung) + " -> " +
                      harness::batchStatusName(p.status) + "/" +
                      harness::rungName(p.rung);
            }
        }

        if (why.empty()) {
            std::cout << "sweep: " << spec.str() << ": contained\n";
        } else {
            ++failed;
            std::cout << "sweep: " << spec.str() << ": FAILED — "
                      << why << "\n";
        }
    }

    std::cout << "sweep: " << armed << " sites armed, " << skipped
              << " skipped, " << failed << " failures\n";
    return failed == 0 ? 0 : 1;
}

/** Differential fuzzing over the whole pipeline; see
 *  driver/fuzzcheck.hh for the per-round protocol. Failures are
 *  minimized into incident bundles unless --no-incidents. */
int
cmdFuzz(const Options &opts)
{
    uint64_t seed = opts.fuzzSeed;
    FuzzReport rep = runFuzzCampaign(seed, opts.fuzzCount, {},
                                     std::max(opts.jobs, 1));
    std::cout << "fuzz: " << rep.programs << " programs (seed " << seed
              << ")  validate failures: " << rep.validateFailures
              << "  round-trip failures: " << rep.roundTripFailures
              << "  equivalence failures: " << rep.equivFailures
              << "  guard rollbacks: " << rep.rollbacks << "\n";
    for (const std::string &msg : rep.messages)
        std::cout << "  " << msg << "\n";
    if (rep.ok()) {
        std::cout << "all checks passed\n";
        return 0;
    }

    if (!opts.noIncidents) {
        incident::IncidentPolicy policy;
        if (!opts.incidentsDir.empty())
            policy.dir = opts.incidentsDir;
        int written = 0;
        for (const FuzzReport::Failure &f : rep.failures) {
            if (written >= policy.maxIncidents)
                break;
            // Generation is pure in the seed, so this is the exact
            // failing program the campaign saw.
            Program prog = fuzzProgram(f.seed);
            incident::Incident inc;
            inc.name = "fuzz-" + std::to_string(f.seed);
            inc.kind = f.kind;
            inc.detail = f.detail;
            inc.source = printProgram(prog);
            inc.seed = f.seed;
            Result<std::string> bundle = incident::captureIncident(
                std::move(inc), prog, fuzzFailurePredicate(f.kind),
                policy);
            if (bundle.ok()) {
                std::cout << "  incident: " << bundle.value() << "\n";
                ++written;
            } else {
                warn("fuzz: " + bundle.diag().str());
            }
        }
    }

    std::cout << "FUZZING FOUND FAILURES\n";
    return 1;
}

/**
 * `memoria diffinterp`: differential check of the two interpreter
 * engines. Every input — kernels, the corpus, their Compound-transformed
 * variants, and `--count` fuzz programs — is executed once per engine
 * through the multi-config cache sweep, and the complete observable
 * surface is compared: ExecStats, array checksum, per-configuration
 * cache counters (accesses/hits/misses/cold/evictions), modeled cycles,
 * and — for faulting programs — the exact Diag text. Any divergence is
 * a bug in the bytecode compiler or the tree walker; CI hard-fails on
 * it.
 */
int
cmdDiffInterp(const Options &opts)
{
    const std::vector<CacheConfig> configs{CacheConfig::rs6000(),
                                           CacheConfig::i860()};

    struct ModeOutcome
    {
        bool ok = false;
        std::string diag;
        SweepResult sweep;
    };
    auto runMode = [&](const Program &prog, InterpMode m) {
        InterpMode saved = defaultInterpMode();
        setDefaultInterpMode(m);
        Result<SweepResult> r = tryRunWithCaches(prog, configs);
        setDefaultInterpMode(saved);
        ModeOutcome out;
        if (r.ok()) {
            out.ok = true;
            out.sweep = std::move(r.value());
        } else {
            out.diag = r.diag().str();
        }
        return out;
    };

    int checked = 0, divergent = 0;
    auto compare = [&](const std::string &name, const Program &prog) {
        ++checked;
        ModeOutcome tree = runMode(prog, InterpMode::Tree);
        ModeOutcome tape = runMode(prog, InterpMode::Tape);
        std::string why;
        if (tree.ok != tape.ok) {
            why = std::string("tree ") +
                  (tree.ok ? "runs" : "faults (" + tree.diag + ")") +
                  ", tape " +
                  (tape.ok ? "runs" : "faults (" + tape.diag + ")");
        } else if (!tree.ok) {
            if (tree.diag != tape.diag)
                why = "fault diags differ: tree '" + tree.diag +
                      "' vs tape '" + tape.diag + "'";
        } else {
            const SweepResult &a = tree.sweep;
            const SweepResult &b = tape.sweep;
            if (a.exec.stmtsExecuted != b.exec.stmtsExecuted ||
                a.exec.memRefs != b.exec.memRefs ||
                a.exec.loopIterations != b.exec.loopIterations)
                why = "ExecStats differ";
            else if (a.checksum != b.checksum)
                why = "array checksums differ";
            else if (a.cycles != b.cycles)
                why = "modeled cycles differ";
            for (size_t c = 0; why.empty() && c < configs.size(); ++c) {
                const CacheStats &x = a.cache[c];
                const CacheStats &y = b.cache[c];
                if (x.accesses != y.accesses || x.hits != y.hits ||
                    x.misses != y.misses ||
                    x.coldMisses != y.coldMisses ||
                    x.evictions != y.evictions)
                    why = "cache counters differ on " +
                          configs[c].name;
            }
        }
        if (!why.empty()) {
            ++divergent;
            std::cout << "DIVERGENCE " << name << ": " << why << "\n";
        }
    };

    // The transformed variant doubles the shape coverage (permuted,
    // fused, distributed, scalar-replaced nests). Verification is off:
    // the oracle itself interprets, and even a program Compound would
    // have rolled back must still agree between the two engines.
    auto compareBoth = [&](const std::string &name, Program prog) {
        compare(name, prog);
        ModelParams params;
        CompoundOptions copts;
        copts.verify = false;
        compoundTransform(prog, params, copts);
        compare(name + "#opt", prog);
    };

    for (const auto &[name, make] : kernels())
        compareBoth(name, make(24));
    for (const auto &spec : corpusSpecs())
        compareBoth(spec.name, buildCorpusProgram(spec, 16));
    for (int k = 0; k < opts.fuzzCount; ++k) {
        uint64_t seed = opts.fuzzSeed + static_cast<uint64_t>(k);
        compareBoth("fuzz-" + std::to_string(seed), fuzzProgram(seed));
    }

    std::cout << "diffinterp: " << checked
              << " program variants compared (tree vs tape), "
              << divergent << " divergent\n";
    if (divergent > 0) {
        std::cout << "INTERPRETERS DIVERGE\n";
        return 1;
    }
    std::cout << "interpreters agree\n";
    return 0;
}

int
cmdBatch(const Options &opts)
{
    if (opts.listFaults) {
        for (const std::string &site : harness::faultSites())
            std::cout << site
                      << (harness::faultSiteSupportsDiag(site)
                              ? " (diag)"
                              : "")
                      << "\n";
        return 0;
    }

    harness::BatchOptions bopts;
    bopts.budget.deadlineMs = std::max<int64_t>(opts.deadlineMs, 0);
    bopts.budget.maxInterpIterations =
        opts.maxIterations > 0
            ? static_cast<uint64_t>(opts.maxIterations)
            : 0;
    bopts.budget.maxIrNodes =
        opts.maxIrNodes > 0 ? static_cast<uint64_t>(opts.maxIrNodes)
                            : 0;
    bopts.jobs =
        opts.jobs > 0
            ? opts.jobs
            : std::clamp<int>(
                  static_cast<int>(std::thread::hardware_concurrency()),
                  1, 4);
    // Incident bundling re-runs failures against their original text.
    bopts.captureSource = opts.incidents;
    if (!opts.caches.empty()) {
        bopts.cacheConfigs = parseCacheConfigs(opts.caches);
        if (bopts.cacheConfigs.empty()) {
            std::cerr << "memoria batch: --caches wants i860, rs6000, "
                         "or both\n";
            return 2;
        }
    }

    std::vector<harness::BatchInput> inputs;
    if (opts.batchAll) {
        inputs = harness::kernelInputs();
        for (harness::BatchInput &in : harness::corpusInputs())
            inputs.push_back(std::move(in));
        for (harness::BatchInput &in :
             harness::directoryInputs("examples"))
            inputs.push_back(std::move(in));
    }
    if (opts.batchStdin) {
        std::string line;
        while (std::getline(std::cin, line)) {
            while (!line.empty() &&
                   isspace(static_cast<unsigned char>(line.back())))
                line.pop_back();
            if (!line.empty() && line[0] != '#')
                inputs.push_back(resolveBatchInput(line));
        }
    }
    for (size_t i = 1; i < opts.positional.size(); ++i)
        inputs.push_back(resolveBatchInput(opts.positional[i]));

    if (inputs.empty()) {
        std::cerr << "memoria batch: no inputs; use --all, --stdin, "
                     "or program names\n";
        return 2;
    }

    if (opts.faultSweep)
        return runFaultSweep(inputs, bopts);

    if (!opts.faultSpec.empty()) {
        Result<harness::FaultSpec> spec =
            harness::parseFaultSpec(opts.faultSpec);
        if (!spec.ok()) {
            std::cerr << "memoria batch: " << spec.diag().str() << "\n";
            return 2;
        }
        harness::armFault(spec.value());
    }

    harness::BatchReport rep = harness::runBatch(inputs, bopts);

    std::vector<std::string> bundles;
    if (opts.incidents) {
        incident::IncidentPolicy policy;
        if (!opts.incidentsDir.empty())
            policy.dir = opts.incidentsDir;
        // Runs before clearFault(): bundling re-arms the still-armed
        // plan around each reduction so fault-induced failures
        // reproduce.
        bundles = incident::processBatchIncidents(rep, bopts, policy);
    }
    harness::clearFault();

    if (opts.jsonOut)
        std::cout << rep.toJson() << "\n";
    else
        printBatchSummary(rep);
    for (const std::string &b : bundles)
        std::cout << "incident: " << b << "\n";

    // Containment is the contract: per-program failures are reported,
    // not escalated to the exit code.
    return 0;
}

/** `memoria serve`: block until EOF or a drain signal; exit 0 on a
 *  clean drain. */
int
cmdServe(const Options &opts)
{
    // Cooperative drain: SIGTERM/SIGINT set a flag the transport
    // loops poll; a second signal escalates to flush-and-exit.
    signals::installDrainHandler();

    serve::ServeOptions sopts;
    if (opts.jobs > 0)
        sopts.jobs = opts.jobs;
    if (opts.queueCapacity > 0)
        sopts.queueCapacity =
            static_cast<size_t>(opts.queueCapacity);
    if (opts.deadlineMs > 0)
        sopts.budget.deadlineMs = opts.deadlineMs;
    if (opts.maxIterations > 0)
        sopts.budget.maxInterpIterations =
            static_cast<uint64_t>(opts.maxIterations);
    if (opts.maxIrNodes > 0)
        sopts.budget.maxIrNodes =
            static_cast<uint64_t>(opts.maxIrNodes);
    if (opts.maxDeadlineMs > 0)
        sopts.maxDeadlineMs = opts.maxDeadlineMs;
    if (opts.drainDeadlineMs > 0)
        sopts.drainDeadlineMs = opts.drainDeadlineMs;
    if (opts.retryAfterMs > 0)
        sopts.retryAfterMs = opts.retryAfterMs;
    if (opts.clientCap > 0)
        sopts.perClientCap = static_cast<size_t>(opts.clientCap);
    if (opts.ageMs > 0)
        sopts.ageTargetMs = opts.ageMs;
    if (opts.rssSoftMb > 0)
        sopts.rssSoftBytes =
            static_cast<uint64_t>(opts.rssSoftMb) << 20;
    if (opts.rssHardMb > 0)
        sopts.rssHardBytes =
            static_cast<uint64_t>(opts.rssHardMb) << 20;
    sopts.allowFaultRequests = opts.allowFaults;
    sopts.writeIncidents = !opts.noIncidents;
    if (!opts.caches.empty()) {
        sopts.cacheConfigs = parseCacheConfigs(opts.caches);
        if (sopts.cacheConfigs.empty()) {
            std::cerr << "memoria serve: --caches wants i860, rs6000, "
                         "or both\n";
            return 2;
        }
    }
    if (!opts.incidentsDir.empty())
        sopts.incidents.dir = opts.incidentsDir;

    if (opts.maxRequestBytes > 0)
        sopts.maxRequestBytes =
            static_cast<size_t>(opts.maxRequestBytes);

    // Result cache: bounds, and the per-shard durable snapshot path
    // (shard -1 — plain single-process serve — uses shard 0's file).
    if (opts.noCache)
        sopts.resultCache.maxEntries = 0;
    else if (opts.cacheEntries >= 0)
        sopts.resultCache.maxEntries =
            static_cast<size_t>(opts.cacheEntries);
    if (opts.cacheBytes > 0)
        sopts.resultCache.maxBytes =
            static_cast<size_t>(opts.cacheBytes);
    sopts.shard = opts.shard;
    if (!opts.cacheSnapshotDir.empty()) {
        sopts.cacheSnapshotPath =
            opts.cacheSnapshotDir + "/cache-shard" +
            std::to_string(std::max(0, opts.shard)) + ".snap";
        if (opts.cacheSnapshotIntervalMs > 0)
            sopts.cacheSnapshotIntervalMs = opts.cacheSnapshotIntervalMs;
    }

    // Shard-worker mode (spawned by the supervisor, never by hand):
    // a plain single-process Server speaking the protocol over the
    // inherited socketpair fd. Metrics export stays with the parent.
    if (opts.workerFd >= 0) {
        serve::Server server(sopts);
        return serve::runWorkerFd(server, opts.workerFd);
    }

    sopts.metricsPath = opts.metricsFile;
    if (opts.metricsIntervalMs > 0)
        sopts.metricsIntervalMs = opts.metricsIntervalMs;

    serve::TransportOptions topts;
    const bool sockets = opts.port >= 0 || !opts.socketPath.empty();
    topts.stdio = !sockets;
    topts.host = opts.host;
    topts.port = opts.port;
    topts.unixPath = opts.socketPath;
    topts.metricsPort = opts.metricsPort;

    if (opts.workers > 0) {
        serve::SupervisorOptions supopts;
        supopts.workers = opts.workers;
        supopts.serve = sopts;
        if (opts.heartbeatMs > 0)
            supopts.heartbeatMs = opts.heartbeatMs;
        if (opts.maxRequestsPerWorker > 0)
            supopts.maxRequestsPerWorker =
                static_cast<uint64_t>(opts.maxRequestsPerWorker);
        if (opts.journalPath != "none") {
            supopts.journalPath =
                opts.journalPath.empty()
                    ? "artifacts/serve/journal.jsonl"
                    : opts.journalPath;
        }

        // Workers re-exec this binary; /proc/self/exe survives PATH
        // lookups and cwd changes, argv[0] is the fallback.
        std::string self = opts.argv0;
        char buf[4096];
        ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
        if (n > 0) {
            buf[n] = '\0';
            self = buf;
        }
        std::vector<std::string> cmd = {self, "serve"};
        auto flag = [&cmd](const std::string &name, int64_t v) {
            cmd.push_back(name);
            cmd.push_back(std::to_string(v));
        };
        if (opts.jobs > 0)
            flag("--jobs", opts.jobs);
        if (opts.queueCapacity > 0)
            flag("--queue", opts.queueCapacity);
        if (opts.deadlineMs > 0)
            flag("--deadline-ms", opts.deadlineMs);
        if (opts.maxIterations > 0)
            flag("--max-iterations", opts.maxIterations);
        if (opts.maxIrNodes > 0)
            flag("--max-ir-nodes", opts.maxIrNodes);
        if (opts.maxDeadlineMs > 0)
            flag("--max-deadline-ms", opts.maxDeadlineMs);
        if (opts.drainDeadlineMs > 0)
            flag("--drain-deadline-ms", opts.drainDeadlineMs);
        if (opts.retryAfterMs > 0)
            flag("--retry-after-ms", opts.retryAfterMs);
        if (opts.clientCap > 0)
            flag("--client-cap", opts.clientCap);
        if (opts.ageMs > 0)
            flag("--age-ms", opts.ageMs);
        // The workers run their own memory governors (soft pressure is
        // handled in-process; hard pressure rides the heartbeat back).
        if (opts.rssSoftMb > 0)
            flag("--rss-soft-mb", opts.rssSoftMb);
        if (opts.rssHardMb > 0)
            flag("--rss-hard-mb", opts.rssHardMb);
        if (opts.maxRequestBytes > 0)
            flag("--max-request-bytes", opts.maxRequestBytes);
        if (opts.allowFaults)
            cmd.push_back("--allow-faults");
        if (opts.noIncidents)
            cmd.push_back("--no-incidents");
        if (!opts.incidentsDir.empty()) {
            cmd.push_back("--incidents-dir");
            cmd.push_back(opts.incidentsDir);
        }
        if (!opts.caches.empty()) {
            cmd.push_back("--caches");
            cmd.push_back(opts.caches);
        }
        if (opts.noCache)
            cmd.push_back("--no-cache");
        if (opts.cacheEntries >= 0)
            flag("--cache-entries", opts.cacheEntries);
        if (opts.cacheBytes > 0)
            flag("--cache-bytes", opts.cacheBytes);
        if (!opts.cacheSnapshotDir.empty()) {
            cmd.push_back("--cache-snapshot-dir");
            cmd.push_back(opts.cacheSnapshotDir);
            if (opts.cacheSnapshotIntervalMs > 0)
                flag("--cache-snapshot-interval-ms",
                     opts.cacheSnapshotIntervalMs);
        }
        supopts.workerCommand = std::move(cmd);

        serve::Supervisor supervisor(std::move(supopts));
        return sockets ? serve::runListener(supervisor, topts)
                       : serve::runStdio(supervisor);
    }

    serve::Server server(sopts);
    return sockets ? serve::runListener(server, topts)
                   : serve::runStdio(server);
}

/**
 * One `metrics` request/response round trip against a running server.
 * Connects fresh each tick — at top's refresh rate that is cheap, and
 * it keeps the view working across server restarts.
 */
bool
fetchMetricsTcp(const std::string &host, int port, std::string &line)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return false;
    }
    const std::string req = "{\"id\":\"top\",\"kind\":\"metrics\"}\n";
    size_t off = 0;
    while (off < req.size()) {
        ssize_t n = ::write(fd, req.data() + off, req.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return false;
        }
        off += static_cast<size_t>(n);
    }
    ::shutdown(fd, SHUT_WR);
    std::string buf;
    char chunk[4096];
    for (;;) {
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break;
        buf.append(chunk, static_cast<size_t>(n));
        size_t pos = buf.find('\n');
        if (pos != std::string::npos) {
            buf.resize(pos);
            break;
        }
    }
    ::close(fd);
    if (buf.empty())
        return false;
    line = buf;
    return true;
}

/** Last non-empty line of a JSONL snapshot file. */
bool
tailSnapshotFile(const std::string &path, std::string &line)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string last, cur;
    while (std::getline(in, cur))
        if (!cur.empty())
            last = cur;
    if (last.empty())
        return false;
    line = std::move(last);
    return true;
}

/**
 * `memoria top`: render the live state of a running server (polled
 * with `metrics` requests over TCP) or of a `--metrics-file` snapshot
 * stream, refreshing in place until interrupted.
 */
int
cmdTop(const Options &opts)
{
    const int64_t intervalMs =
        opts.topIntervalMs > 0 ? opts.topIntervalMs : 1000;

    std::function<bool(std::string &)> fetch;
    std::string target;
    if (!opts.topFile.empty()) {
        const std::string path = opts.topFile;
        target = path;
        fetch = [path](std::string &line) {
            return tailSnapshotFile(path, line);
        };
    } else {
        // `memoria top host:port`, `memoria top PORT`, or --host/--port.
        std::string host = opts.host;
        int port = opts.port;
        if (opts.positional.size() > 1) {
            const std::string &hp = opts.positional[1];
            size_t colon = hp.rfind(':');
            if (colon == std::string::npos) {
                port = std::atoi(hp.c_str());
            } else {
                if (colon > 0)
                    host = hp.substr(0, colon);
                port = std::atoi(hp.c_str() + colon + 1);
            }
        }
        if (port <= 0) {
            std::cerr << "memoria top: wants host:port (or --file "
                         "snapshots.jsonl)\n";
            return 2;
        }
        target = host + ":" + std::to_string(port);
        fetch = [host, port](std::string &line) {
            return fetchMetricsTcp(host, port, line);
        };
    }

    serve::TopSample prev;
    bool havePrev = false;
    for (;;) {
        std::string line;
        if (!fetch(line)) {
            std::cerr << "memoria top: cannot fetch a metrics sample "
                         "from "
                      << target << "\n";
            return 1;
        }
        Result<json::Value> parsed = json::parse(line);
        if (!parsed.ok()) {
            std::cerr << "memoria top: bad metrics sample: "
                      << parsed.diag().str() << "\n";
            return 1;
        }
        serve::TopSample cur =
            serve::parseTopSample(parsed.value());
        std::string frame =
            serve::renderTopFrame(cur, havePrev ? &prev : nullptr);
        if (!opts.topOnce)
            std::cout << "\033[H\033[2J";
        std::cout << frame;
        std::cout.flush();
        if (opts.topOnce)
            return cur.valid ? 0 : 1;
        prev = cur;
        havePrev = true;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(intervalMs));
    }
}

/** The dotted code prefix of a rendered Diag ("code: message"). */
std::string
diagCodePrefix(const std::string &detail)
{
    size_t end = detail.find_first_of(": ");
    return end == std::string::npos ? detail : detail.substr(0, end);
}

std::optional<harness::BatchStatus>
batchStatusFromName(const std::string &name)
{
    using harness::BatchStatus;
    for (BatchStatus s :
         {BatchStatus::Ok, BatchStatus::Degraded, BatchStatus::Diag,
          BatchStatus::Timeout, BatchStatus::PanicContained})
        if (name == harness::batchStatusName(s))
            return s;
    return std::nullopt;
}

/**
 * `memoria reduce <bundle-dir>`: re-minimize a recorded incident with
 * offline budgets, replaying its failure signature and fault plan.
 * `memoria reduce <file.mem>`: run the pipeline once to learn how the
 * program fails, then minimize against that signature. Either way a
 * fresh bundle is written and its path printed.
 */
int
cmdReduce(const Options &opts)
{
    namespace fs = std::filesystem;
    const std::string &path = opts.positional[1];

    incident::IncidentPolicy policy;
    if (!opts.incidentsDir.empty())
        policy.dir = opts.incidentsDir;
    // Offline reduction affords bigger budgets than in-band capture.
    policy.reduce.deadlineMs =
        opts.deadlineMs > 0 ? opts.deadlineMs : 60000;
    policy.reduce.maxChecks =
        opts.maxChecks > 0 ? opts.maxChecks : 10000;

    harness::BatchOptions bopts;
    if (opts.maxIterations > 0)
        bopts.budget.maxInterpIterations =
            static_cast<uint64_t>(opts.maxIterations);
    if (opts.maxIrNodes > 0)
        bopts.budget.maxIrNodes =
            static_cast<uint64_t>(opts.maxIrNodes);

    auto readAll = [](const fs::path &p) -> std::optional<std::string> {
        std::ifstream in(p);
        if (!in)
            return std::nullopt;
        std::ostringstream buf;
        buf << in.rdbuf();
        return buf.str();
    };

    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        auto metaText = readAll(fs::path(path) / "incident.json");
        if (!metaText) {
            std::cerr << "memoria reduce: no incident.json in '"
                      << path << "'\n";
            return 1;
        }
        Result<json::Value> meta = json::parse(*metaText);
        if (!meta.ok()) {
            std::cerr << "memoria reduce: " << meta.diag().str()
                      << "\n";
            return 1;
        }
        std::string name = meta.value().getString("name", "anon");
        std::string kind = meta.value().getString("kind", "");
        std::string detail = meta.value().getString("detail", "");
        std::string faultSpec =
            meta.value().getString("fault_spec", "");
        auto originalText = readAll(fs::path(path) / "original.mem");
        if (!originalText) {
            std::cerr << "memoria reduce: no original.mem in '"
                      << path << "'\n";
            return 1;
        }
        ParseError perr;
        auto prog = parseProgram(*originalText, &perr);
        if (!prog) {
            std::cerr << "memoria reduce: original.mem does not "
                         "parse: " << perr.str() << "\n";
            return 1;
        }

        incident::FailureSignature sig;
        auto status = batchStatusFromName(kind);
        if (status && *status != harness::BatchStatus::Ok) {
            sig.status = *status;
            if (*status == harness::BatchStatus::Diag)
                sig.diagCode = diagCodePrefix(detail);
        } else if (kind == "degraded") {
            sig.status = harness::BatchStatus::Degraded;
        } else {
            // Fuzz bundles record the broken property, not a batch
            // status; re-check that property directly.
            incident::Incident inc;
            inc.name = name;
            inc.kind = kind;
            inc.detail = detail;
            inc.source = *originalText;
            Result<std::string> bundle = incident::captureIncident(
                std::move(inc), *prog, fuzzFailurePredicate(kind),
                policy);
            if (!bundle.ok()) {
                std::cerr << "memoria reduce: "
                          << bundle.diag().str() << "\n";
                return 1;
            }
            std::cout << "incident: " << bundle.value() << "\n";
            return 0;
        }

        std::optional<harness::FaultSpec> fault;
        if (!faultSpec.empty()) {
            Result<harness::FaultSpec> spec =
                harness::parseFaultSpec(faultSpec);
            if (spec.ok())
                fault = spec.value();
            else
                warn("reduce: ignoring unparsable fault_spec '" +
                     faultSpec + "'");
        }

        incident::Incident inc;
        inc.name = name;
        inc.kind = kind;
        inc.detail = detail;
        inc.source = *originalText;
        inc.faultSpec = faultSpec;
        harness::setFaultAccounting(true);
        Result<std::string> bundle = incident::captureIncident(
            std::move(inc), *prog,
            incident::pipelineFailurePredicate(name, bopts, sig,
                                               fault),
            policy);
        harness::clearFault();
        if (!bundle.ok()) {
            std::cerr << "memoria reduce: " << bundle.diag().str()
                      << "\n";
            return 1;
        }
        std::cout << "incident: " << bundle.value() << "\n";
        return 0;
    }

    // Bare source file: learn the failure signature by running the
    // isolated pipeline once, then minimize against it.
    auto text = readAll(path);
    if (!text) {
        std::cerr << "memoria reduce: cannot read '" << path << "'\n";
        return 1;
    }
    bopts.captureSource = true;
    std::string name = fs::path(path).stem().string();
    harness::ProgramOutcome out = harness::runIsolated(
        harness::namedInput(name, *text), bopts);
    if (out.status == harness::BatchStatus::Ok) {
        std::cout << "reduce: '" << path
                  << "' passes the pipeline; nothing to reduce\n";
        return 1;
    }
    Result<std::string> bundle =
        incident::captureOutcome(out, bopts, policy);
    if (!bundle.ok()) {
        std::cerr << "memoria reduce: " << bundle.diag().str() << "\n";
        return 1;
    }
    std::cout << "incident: " << bundle.value() << "\n";
    return 0;
}

int
run(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    if (!opts.error.empty()) {
        std::cerr << "memoria: " << opts.error << "\n" << usageText();
        return 2;
    }
    applyVerbosity(opts);

    if (!opts.interp.empty()) {
        std::optional<InterpMode> mode = parseInterpMode(opts.interp);
        if (!mode) {
            std::cerr << "memoria: --interp wants tree or tape, got '"
                      << opts.interp << "'\n";
            return 2;
        }
        setDefaultInterpMode(*mode);
        // Exported so re-exec'd children (the serve supervisor's shard
        // workers) inherit the engine choice.
        ::setenv("MEMORIA_INTERP", interpModeName(*mode), 1);
    }

    if (opts.help) {
        std::cout << usageText();
        return 0;
    }
    if (opts.version) {
        std::cout << versionLine() << "\n";
        return 0;
    }
    if (opts.positional.empty()) {
        std::cerr << usageText();
        return 2;
    }

    const std::string &cmd = opts.positional[0];

    std::unique_ptr<obs::TraceSink> sink;
    if (!opts.traceFile.empty())
        sink = std::make_unique<obs::JsonLinesSink>(opts.traceFile);
    else if (opts.traceText)
        sink = std::make_unique<obs::TextSink>(std::cerr);
    // Commands that can write incident bundles keep a flight recorder
    // so the bundles carry a trace tail (tee'd into any requested
    // sink).
    if (cmd == "serve" || cmd == "reduce" || cmd == "fuzz" ||
        cmd == "batch") {
        std::unique_ptr<obs::TraceSink> ring =
            std::make_unique<obs::RingSink>(256);
        if (sink)
            sink = std::make_unique<obs::TeeSink>(std::move(sink),
                                                  std::move(ring));
        else
            sink = std::move(ring);
    }
    if (sink)
        obs::setTraceSink(std::move(sink));

    // One-shot commands flush diagnostics and exit on SIGINT/SIGTERM;
    // `serve` installs the cooperative drain handler instead.
    if (cmd != "serve") {
        signals::installFlushOnSignal();
        if (opts.statsText || opts.statsJson)
            signals::addFlushCallback([json = opts.statsJson] {
                if (json)
                    obs::statsRegistry().dumpJson(std::cerr);
                else
                    obs::statsRegistry().dumpText(std::cerr);
            });
    }

    int rc = 2;
    if (cmd == "list") {
        rc = cmdList();
    } else if (cmd == "version") {
        std::cout << versionLine() << "\n";
        rc = 0;
    } else if (cmd == "serve") {
        rc = cmdServe(opts);
    } else if (cmd == "top") {
        rc = cmdTop(opts);
    } else if (cmd == "reduce") {
        if (opts.positional.size() < 2) {
            std::cerr << "memoria reduce: need a bundle directory or "
                         "source file\n";
            rc = 2;
        } else {
            rc = cmdReduce(opts);
        }
    } else if (cmd == "batch") {
        rc = cmdBatch(opts);
    } else if (cmd == "bench") {
        rc = cmdBench(opts);
    } else if (cmd == "fuzz") {
        if (opts.fuzzCount <= 0) {
            std::cerr << "memoria: --count must be positive\n";
            rc = 2;
        } else {
            rc = cmdFuzz(opts);
        }
    } else if (cmd == "diffinterp") {
        if (opts.fuzzCount < 0) {
            std::cerr << "memoria: --count must be non-negative\n";
            rc = 2;
        } else {
            rc = cmdDiffInterp(opts);
        }
    } else if (opts.positional.size() < 2) {
        std::cerr << "missing program name; try `memoria list`\n";
    } else {
        int64_t n = opts.positional.size() > 2
                        ? std::atoll(opts.positional[2].c_str())
                        : 48;
        Result<Program> resolved = resolve(opts.positional[1], n);
        if (!resolved.ok()) {
            std::cerr << "memoria: " << resolved.diag().str() << "\n";
            rc = 1;
        } else {
            Program prog = std::move(resolved.value());
            if (cmd == "print") {
                std::cout << printProgram(prog);
                rc = 0;
            } else if (cmd == "analyze") {
                rc = cmdAnalyze(std::move(prog));
            } else if (cmd == "optimize") {
                rc = cmdOptimize(std::move(prog));
            } else if (cmd == "simulate") {
                rc = cmdSimulate(std::move(prog));
            } else if (cmd == "reuse") {
                rc = cmdReuse(std::move(prog));
            } else if (cmd == "trace") {
                rc = cmdTrace(std::move(prog));
            } else {
                std::cerr << "unknown command '" << cmd << "'\n";
            }
        }
    }

    if (opts.statsJson)
        obs::statsRegistry().dumpJson(std::cout);
    else if (opts.statsText)
        obs::statsRegistry().dumpText(std::cout);

    obs::setTraceSink(nullptr);  // flush and close any trace file
    return rc;
}

} // namespace
} // namespace memoria

int
main(int argc, char **argv)
{
    return memoria::run(argc, argv);
}
