/**
 * @file
 * memoria — command-line driver.
 *
 * Runs the pipeline on the built-in kernels and corpus programs:
 *
 *   memoria list
 *   memoria print <program> [N]
 *   memoria analyze <program> [N]      LoopCost table + memory order
 *   memoria optimize <program> [N]     Compound + before/after source
 *   memoria simulate <program> [N]     hit rates + speedup on both caches
 *   memoria reuse <program> [N]        reuse-distance profile
 *   memoria trace <program> [N]        Compound decision provenance
 *   memoria fuzz [--seed N] [--count K]  differential pipeline fuzzing
 *
 * Global flags (accepted anywhere on the command line):
 *
 *   --trace=<file.jsonl>   write the structured event trace as JSON lines
 *   --trace                write a human-readable trace to stderr
 *   --stats                dump the stats registry as a table at exit
 *   --stats=json           dump the stats registry as JSON at exit
 *   -v / -q                raise / silence log verbosity
 *                          (also: MEMORIA_LOG_LEVEL=quiet|warn|info|debug)
 *
 * <program> is a kernel name (matmul-ijk, matmul-jki, cholesky, adi,
 * erlebacher, gmtry, simple, vpenta, jacobi), a corpus program name
 * (adm, arc2d, ..., wave), or a path to a source file written in the
 * loop-nest language (see src/frontend/parser.hh and examples/stencil.mem).
 */

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <fstream>
#include <sstream>

#include "cachesim/reuse.hh"
#include "driver/fuzzcheck.hh"
#include "frontend/parser.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "driver/memoria.hh"
#include "ir/printer.hh"
#include "model/loopcost.hh"
#include "suite/corpus.hh"
#include "suite/kernels.hh"
#include "support/table.hh"

namespace memoria {
namespace {

using Maker = std::function<Program(int64_t)>;

const std::map<std::string, Maker> &
kernels()
{
    static const std::map<std::string, Maker> table = {
        {"matmul-ijk", [](int64_t n) { return makeMatmul("IJK", n); }},
        {"matmul-ikj", [](int64_t n) { return makeMatmul("IKJ", n); }},
        {"matmul-jki", [](int64_t n) { return makeMatmul("JKI", n); }},
        {"cholesky", [](int64_t n) { return makeCholeskyKIJ(n); }},
        {"adi", [](int64_t n) { return makeAdiScalarized(n); }},
        {"erlebacher",
         [](int64_t n) { return makeErlebacherDistributed(n); }},
        {"gmtry", [](int64_t n) { return makeGmtry(n); }},
        {"simple", [](int64_t n) { return makeSimpleHydro(n); }},
        {"vpenta", [](int64_t n) { return makeVpenta(n); }},
        {"jacobi", [](int64_t n) { return makeJacobiBadOrder(n); }},
    };
    return table;
}

Program
resolve(const std::string &name, int64_t n)
{
    auto it = kernels().find(name);
    if (it != kernels().end())
        return it->second(n);
    for (const auto &spec : corpusSpecs())
        if (spec.name == name)
            return buildCorpusProgram(spec, std::max<int64_t>(n, 8));

    // Otherwise treat the name as a source file in the loop-nest
    // language (see src/frontend/parser.hh).
    std::ifstream in(name);
    if (in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        ParseError err;
        auto p = parseProgram(buf.str(), &err);
        if (!p)
            fatal(name + ": " + err.str());
        return std::move(*p);
    }
    fatal("unknown program or file '" + name +
          "'; try `memoria list`");
}

int
cmdList()
{
    std::cout << "kernels:\n";
    for (const auto &[name, mk] : kernels())
        std::cout << "  " << name << "\n";
    std::cout << "corpus programs:\n ";
    for (const auto &spec : corpusSpecs())
        std::cout << " " << spec.name;
    std::cout << "\n";
    return 0;
}

int
cmdAnalyze(Program prog)
{
    ModelParams params;
    std::cout << printProgram(prog) << "\n";
    int nest = 0;
    for (auto &top : prog.body) {
        if (!top->isLoop() || loopDepth(*top) < 2)
            continue;
        NestAnalysis na(prog, top.get(), params);
        std::cout << "nest " << nest++ << ": LoopCost per candidate\n";
        for (Node *l : na.loops()) {
            std::cout << "  " << prog.varName(l->var) << ": "
                      << na.loopCost(l).str() << "\n";
        }
        std::cout << "  memory order: ";
        for (Node *l : na.memoryOrder())
            std::cout << prog.varName(l->var);
        std::cout << (nestInMemoryOrder(na) ? " (already)" : "")
                  << "\n";
    }
    return 0;
}

int
cmdOptimize(Program prog)
{
    ModelParams params;
    OptimizedProgram opt = optimizeProgram(prog, params);
    std::cout << "--- original ---\n" << printProgram(opt.original)
              << "\n--- transformed ---\n"
              << printProgram(opt.transformed);
    std::cout << "nests: " << opt.report.nests
              << "  in memory order: " << opt.report.nestsOrig << "+"
              << opt.report.nestsPerm << "  failed: "
              << opt.report.nestsFail
              << "  fused: " << opt.report.fusion.fused
              << "  distributed: " << opt.report.distributions << "\n";
    std::cout << "semantics preserved: "
              << (runChecksum(opt.original) ==
                          runChecksum(opt.transformed)
                      ? "yes"
                      : "NO")
              << "\n";
    return 0;
}

int
cmdSimulate(Program prog)
{
    ModelParams params;
    OptimizedProgram opt = optimizeProgram(prog, params);
    TextTable t({"cache", "whole orig hit%", "whole final hit%",
                 "speedup"});
    for (const CacheConfig &cfg :
         {CacheConfig::rs6000(), CacheConfig::i860()}) {
        HitRates r = simulateHitRates(opt, cfg);
        Performance perf = simulatePerformance(opt, cfg);
        t.addRow({cfg.name, TextTable::num(r.wholeOrig, 2),
                  TextTable::num(r.wholeFinal, 2),
                  TextTable::num(perf.speedup(), 2)});
    }
    std::cout << t.str();
    return 0;
}

int
cmdReuse(Program prog)
{
    ModelParams params;
    OptimizedProgram opt = optimizeProgram(prog, params);
    auto profile = [](Program &p) {
        ReuseDistanceAnalyzer rd(32);
        Interpreter interp(p);
        interp.run(&rd);
        return rd;
    };
    ReuseDistanceAnalyzer r0 = profile(opt.original);
    ReuseDistanceAnalyzer r1 = profile(opt.transformed);
    std::cout << "mean reuse distance: "
              << TextTable::num(r0.meanDistance(), 1) << " -> "
              << TextTable::num(r1.meanDistance(), 1) << " lines\n";
    TextTable t({"capacity (lines)", "orig miss%", "final miss%"});
    for (uint64_t cap : {16, 64, 256, 1024}) {
        t.addRow({std::to_string(cap),
                  TextTable::num(100.0 * r0.missRatio(cap), 1),
                  TextTable::num(100.0 * r1.missRatio(cap), 1)});
    }
    std::cout << t.str();
    return 0;
}

/** Decision provenance: one row per nest with Compound's choice. */
int
cmdTrace(Program prog)
{
    ModelParams params;
    OptimizedProgram opt = optimizeProgram(prog, params);

    TextTable t({"nest", "depth", "strategy", "verify", "fail",
                 "orig cost", "final cost", "ideal cost"});
    int nest = 0;
    for (const NestReport &rep : opt.compound.nests) {
        t.addRow({std::to_string(nest++), std::to_string(rep.depth),
                  nestStrategyName(rep),
                  rep.rolledBack ? "ROLLED-BACK" : "ok",
                  permuteFailName(rep.fail), rep.origCost.str(),
                  rep.finalCost.str(), rep.idealCost.str()});
    }
    std::cout << t.str();
    std::cout << "nests: " << opt.report.nests
              << "  already in memory order: " << opt.report.nestsOrig
              << "  transformed into memory order: "
              << opt.report.nestsPerm
              << "  failed: " << opt.report.nestsFail << "\n";
    std::cout << "verify failures (rolled back): "
              << opt.report.failVerify << "\n";

    // Confirm the decisions in the cache simulator; this also fills the
    // cachesim.* stats counters so --stats reconciles with the table.
    HitRates rates = simulateHitRates(opt, CacheConfig::i860());
    std::cout << "whole-program hit% (warm, i860): "
              << TextTable::num(rates.wholeOrig, 2) << " -> "
              << TextTable::num(rates.wholeFinal, 2) << "\n";
    return 0;
}

/** Differential fuzzing over the whole pipeline; see
 *  driver/fuzzcheck.hh for the per-round protocol. */
int
cmdFuzz(uint64_t seed, int count)
{
    FuzzReport rep = runFuzzCampaign(seed, count);
    std::cout << "fuzz: " << rep.programs << " programs (seed " << seed
              << ")  validate failures: " << rep.validateFailures
              << "  round-trip failures: " << rep.roundTripFailures
              << "  equivalence failures: " << rep.equivFailures
              << "  guard rollbacks: " << rep.rollbacks << "\n";
    for (const std::string &msg : rep.messages)
        std::cout << "  " << msg << "\n";
    if (!rep.ok()) {
        std::cout << "FUZZING FOUND FAILURES\n";
        return 1;
    }
    std::cout << "all checks passed\n";
    return 0;
}

/** Global flags pulled out of argv before command dispatch. */
struct Options
{
    std::vector<std::string> positional;
    std::string traceFile;     ///< --trace=<file.jsonl>
    bool traceText = false;    ///< bare --trace
    bool statsText = false;    ///< --stats
    bool statsJson = false;    ///< --stats=json
    int verbosity = 0;         ///< -v count minus -q count
    bool quiet = false;
    uint64_t fuzzSeed = 1;     ///< fuzz: --seed
    int fuzzCount = 100;       ///< fuzz: --count
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--trace") {
            opts.traceText = true;
        } else if (arg.rfind("--trace=", 0) == 0) {
            opts.traceFile = arg.substr(8);
            if (opts.traceFile.empty())
                fatal("--trace= needs a file name");
        } else if (arg == "--stats") {
            opts.statsText = true;
        } else if (arg == "--stats=json") {
            opts.statsJson = true;
        } else if (arg == "--seed" || arg == "--count") {
            if (i + 1 >= argc)
                fatal(arg + " needs a value");
            std::string v = argv[++i];
            if (arg == "--seed")
                opts.fuzzSeed =
                    static_cast<uint64_t>(std::atoll(v.c_str()));
            else
                opts.fuzzCount = std::atoi(v.c_str());
        } else if (arg.rfind("--seed=", 0) == 0) {
            opts.fuzzSeed =
                static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
        } else if (arg.rfind("--count=", 0) == 0) {
            opts.fuzzCount = std::atoi(arg.c_str() + 8);
        } else if (arg == "-v") {
            ++opts.verbosity;
        } else if (arg == "-q") {
            opts.quiet = true;
        } else if (!arg.empty() && arg[0] == '-' && arg.size() > 1 &&
                   !isdigit(static_cast<unsigned char>(arg[1]))) {
            fatal("unknown flag '" + arg + "'");
        } else {
            opts.positional.push_back(std::move(arg));
        }
    }
    return opts;
}

void
applyVerbosity(const Options &opts)
{
    if (opts.quiet) {
        setLogLevel(LogLevel::Quiet);
        return;
    }
    int level = static_cast<int>(logLevel()) + opts.verbosity;
    level = std::min(level, static_cast<int>(LogLevel::Debug));
    setLogLevel(static_cast<LogLevel>(level));
}

int
run(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    applyVerbosity(opts);

    if (opts.positional.empty()) {
        std::cerr
            << "usage: memoria "
               "<list|print|analyze|optimize|simulate|reuse|trace> "
               "[program] [N] [--trace[=file.jsonl]] [--stats[=json]] "
               "[-v] [-q]\n"
               "       memoria fuzz [--seed N] [--count K]\n";
        return 2;
    }

    if (!opts.traceFile.empty())
        obs::setTraceSink(
            std::make_unique<obs::JsonLinesSink>(opts.traceFile));
    else if (opts.traceText)
        obs::setTraceSink(std::make_unique<obs::TextSink>(std::cerr));

    const std::string &cmd = opts.positional[0];
    int rc = 2;
    if (cmd == "list") {
        rc = cmdList();
    } else if (cmd == "fuzz") {
        if (opts.fuzzCount <= 0)
            fatal("--count must be positive");
        rc = cmdFuzz(opts.fuzzSeed, opts.fuzzCount);
    } else if (opts.positional.size() < 2) {
        std::cerr << "missing program name; try `memoria list`\n";
    } else {
        int64_t n = opts.positional.size() > 2
                        ? std::atoll(opts.positional[2].c_str())
                        : 48;
        Program prog = resolve(opts.positional[1], n);

        if (cmd == "print") {
            std::cout << printProgram(prog);
            rc = 0;
        } else if (cmd == "analyze") {
            rc = cmdAnalyze(std::move(prog));
        } else if (cmd == "optimize") {
            rc = cmdOptimize(std::move(prog));
        } else if (cmd == "simulate") {
            rc = cmdSimulate(std::move(prog));
        } else if (cmd == "reuse") {
            rc = cmdReuse(std::move(prog));
        } else if (cmd == "trace") {
            rc = cmdTrace(std::move(prog));
        } else {
            std::cerr << "unknown command '" << cmd << "'\n";
        }
    }

    if (opts.statsJson)
        obs::statsRegistry().dumpJson(std::cout);
    else if (opts.statsText)
        obs::statsRegistry().dumpText(std::cout);

    obs::setTraceSink(nullptr);  // flush and close any trace file
    return rc;
}

} // namespace
} // namespace memoria

int
main(int argc, char **argv)
{
    return memoria::run(argc, argv);
}
