/**
 * @file
 * memoria — command-line driver.
 *
 * Runs the pipeline on the built-in kernels and corpus programs:
 *
 *   memoria list
 *   memoria print <program> [N]
 *   memoria analyze <program> [N]      LoopCost table + memory order
 *   memoria optimize <program> [N]     Compound + before/after source
 *   memoria simulate <program> [N]     hit rates + speedup on both caches
 *   memoria reuse <program> [N]        reuse-distance profile
 *   memoria trace <program> [N]        Compound decision provenance
 *   memoria fuzz [--seed N] [--count K]  differential pipeline fuzzing
 *   memoria batch [programs...]        resilient batch pipeline
 *
 * `memoria batch` runs the whole pipeline over many programs with
 * per-program crash isolation, budgets, and the degradation ladder
 * (docs/ROBUSTNESS.md):
 *
 *   --all                  kernels + 35-program corpus + examples/*.mem
 *   --stdin                read program names / file paths from stdin
 *   --jobs N               worker threads (default: up to 4)
 *   --deadline-ms N        wall-clock budget per ladder attempt
 *   --max-iterations N     interpreter iteration budget per attempt
 *   --max-ir-nodes N       IR node budget per program version
 *   --json                 print the machine-readable batch report
 *   --fault SPEC           arm one fault site: site[:action[:N]][@prog]
 *   --fault-sweep          arm every site in turn; verify containment
 *   --list-faults          print the registered fault-site catalog
 *
 * Global flags (accepted anywhere on the command line):
 *
 *   --trace=<file.jsonl>   write the structured event trace as JSON lines
 *   --trace                write a human-readable trace to stderr
 *   --stats                dump the stats registry as a table at exit
 *   --stats=json           dump the stats registry as JSON at exit
 *   -v / -q                raise / silence log verbosity
 *                          (also: MEMORIA_LOG_LEVEL=quiet|warn|info|debug)
 *   --help                 print usage and exit 0
 *
 * Exit codes: 0 = success, 1 = pipeline failure (bad input program,
 * fuzzing or sweep found failures), 2 = usage error. A `batch` run that
 * *contains* per-program failures still exits 0 — containment is the
 * command's contract; parse the JSON report for per-program status.
 *
 * <program> is a kernel name (matmul-ijk, matmul-jki, cholesky, adi,
 * erlebacher, gmtry, simple, vpenta, jacobi), a corpus program name
 * (adm, arc2d, ..., wave), or a path to a source file written in the
 * loop-nest language (see src/frontend/parser.hh and examples/stencil.mem).
 */

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <fstream>
#include <sstream>

#include "cachesim/reuse.hh"
#include "driver/fuzzcheck.hh"
#include "frontend/parser.hh"
#include "harness/batch.hh"
#include "harness/fault.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "driver/memoria.hh"
#include "ir/printer.hh"
#include "model/loopcost.hh"
#include "suite/corpus.hh"
#include "suite/kernels.hh"
#include "support/table.hh"

namespace memoria {
namespace {

using Maker = std::function<Program(int64_t)>;

const std::map<std::string, Maker> &
kernels()
{
    static const std::map<std::string, Maker> table = {
        {"matmul-ijk", [](int64_t n) { return makeMatmul("IJK", n); }},
        {"matmul-ikj", [](int64_t n) { return makeMatmul("IKJ", n); }},
        {"matmul-jki", [](int64_t n) { return makeMatmul("JKI", n); }},
        {"cholesky", [](int64_t n) { return makeCholeskyKIJ(n); }},
        {"adi", [](int64_t n) { return makeAdiScalarized(n); }},
        {"erlebacher",
         [](int64_t n) { return makeErlebacherDistributed(n); }},
        {"gmtry", [](int64_t n) { return makeGmtry(n); }},
        {"simple", [](int64_t n) { return makeSimpleHydro(n); }},
        {"vpenta", [](int64_t n) { return makeVpenta(n); }},
        {"jacobi", [](int64_t n) { return makeJacobiBadOrder(n); }},
    };
    return table;
}

/** Corpus programs need extent >= 8 to exercise their nests; smaller
 *  requests are clamped, with a warning so the surprise is visible. */
int64_t
clampCorpusExtent(const std::string &name, int64_t n)
{
    if (n < 8) {
        warn("corpus program '" + name + "': requested size " +
             std::to_string(n) + " clamped to 8");
        return 8;
    }
    return n;
}

/**
 * Resolve a program by name: kernel, corpus program, or source file.
 * Failures come back as a Diag — the CLI reports them and exits 1
 * instead of aborting mid-pipeline.
 */
Result<Program>
resolve(const std::string &name, int64_t n)
{
    auto it = kernels().find(name);
    if (it != kernels().end())
        return Result<Program>(it->second(n));
    for (const auto &spec : corpusSpecs())
        if (spec.name == name)
            return Result<Program>(
                buildCorpusProgram(spec, clampCorpusExtent(name, n)));

    // Otherwise treat the name as a source file in the loop-nest
    // language (see src/frontend/parser.hh).
    std::ifstream in(name);
    if (in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        ParseError err;
        auto p = parseProgram(buf.str(), &err);
        if (!p)
            return Result<Program>::err(Diag::error(
                "parse.error", name + ": " + err.str()));
        return Result<Program>(std::move(*p));
    }
    return Result<Program>::err(
        Diag::error("cli.unknown_program",
                    "unknown program or file '" + name +
                        "'; try `memoria list`"));
}

/** Same resolution for one batch input; loading stays lazy so failures
 *  are contained inside the batch isolation boundary. */
harness::BatchInput
resolveBatchInput(const std::string &name)
{
    auto it = kernels().find(name);
    if (it != kernels().end())
        return {name, [make = it->second]() {
                    return Result<Program>(make(24));
                }};
    for (const auto &spec : corpusSpecs())
        if (spec.name == name)
            return {name, [spec]() {
                        return Result<Program>(
                            buildCorpusProgram(spec, 16));
                    }};
    return harness::fileInput(name);
}

int
cmdList()
{
    std::cout << "kernels:\n";
    for (const auto &[name, mk] : kernels())
        std::cout << "  " << name << "\n";
    std::cout << "corpus programs:\n ";
    for (const auto &spec : corpusSpecs())
        std::cout << " " << spec.name;
    std::cout << "\n";
    return 0;
}

int
cmdAnalyze(Program prog)
{
    ModelParams params;
    std::cout << printProgram(prog) << "\n";
    int nest = 0;
    for (auto &top : prog.body) {
        if (!top->isLoop() || loopDepth(*top) < 2)
            continue;
        NestAnalysis na(prog, top.get(), params);
        std::cout << "nest " << nest++ << ": LoopCost per candidate\n";
        for (Node *l : na.loops()) {
            std::cout << "  " << prog.varName(l->var) << ": "
                      << na.loopCost(l).str() << "\n";
        }
        std::cout << "  memory order: ";
        for (Node *l : na.memoryOrder())
            std::cout << prog.varName(l->var);
        std::cout << (nestInMemoryOrder(na) ? " (already)" : "")
                  << "\n";
    }
    return 0;
}

int
cmdOptimize(Program prog)
{
    ModelParams params;
    OptimizedProgram opt = optimizeProgram(prog, params);
    std::cout << "--- original ---\n" << printProgram(opt.original)
              << "\n--- transformed ---\n"
              << printProgram(opt.transformed);
    std::cout << "nests: " << opt.report.nests
              << "  in memory order: " << opt.report.nestsOrig << "+"
              << opt.report.nestsPerm << "  failed: "
              << opt.report.nestsFail
              << "  fused: " << opt.report.fusion.fused
              << "  distributed: " << opt.report.distributions << "\n";
    std::cout << "semantics preserved: "
              << (runChecksum(opt.original) ==
                          runChecksum(opt.transformed)
                      ? "yes"
                      : "NO")
              << "\n";
    return 0;
}

int
cmdSimulate(Program prog)
{
    ModelParams params;
    OptimizedProgram opt = optimizeProgram(prog, params);
    TextTable t({"cache", "whole orig hit%", "whole final hit%",
                 "speedup"});
    for (const CacheConfig &cfg :
         {CacheConfig::rs6000(), CacheConfig::i860()}) {
        HitRates r = simulateHitRates(opt, cfg);
        Performance perf = simulatePerformance(opt, cfg);
        t.addRow({cfg.name, TextTable::num(r.wholeOrig, 2),
                  TextTable::num(r.wholeFinal, 2),
                  TextTable::num(perf.speedup(), 2)});
    }
    std::cout << t.str();
    return 0;
}

int
cmdReuse(Program prog)
{
    ModelParams params;
    OptimizedProgram opt = optimizeProgram(prog, params);
    auto profile = [](Program &p) {
        ReuseDistanceAnalyzer rd(32);
        Interpreter interp(p);
        interp.run(&rd);
        return rd;
    };
    ReuseDistanceAnalyzer r0 = profile(opt.original);
    ReuseDistanceAnalyzer r1 = profile(opt.transformed);
    std::cout << "mean reuse distance: "
              << TextTable::num(r0.meanDistance(), 1) << " -> "
              << TextTable::num(r1.meanDistance(), 1) << " lines\n";
    TextTable t({"capacity (lines)", "orig miss%", "final miss%"});
    for (uint64_t cap : {16, 64, 256, 1024}) {
        t.addRow({std::to_string(cap),
                  TextTable::num(100.0 * r0.missRatio(cap), 1),
                  TextTable::num(100.0 * r1.missRatio(cap), 1)});
    }
    std::cout << t.str();
    return 0;
}

/** Decision provenance: one row per nest with Compound's choice. */
int
cmdTrace(Program prog)
{
    ModelParams params;
    OptimizedProgram opt = optimizeProgram(prog, params);

    TextTable t({"nest", "depth", "strategy", "verify", "fail",
                 "orig cost", "final cost", "ideal cost"});
    int nest = 0;
    for (const NestReport &rep : opt.compound.nests) {
        t.addRow({std::to_string(nest++), std::to_string(rep.depth),
                  nestStrategyName(rep),
                  rep.rolledBack ? "ROLLED-BACK" : "ok",
                  permuteFailName(rep.fail), rep.origCost.str(),
                  rep.finalCost.str(), rep.idealCost.str()});
    }
    std::cout << t.str();
    std::cout << "nests: " << opt.report.nests
              << "  already in memory order: " << opt.report.nestsOrig
              << "  transformed into memory order: "
              << opt.report.nestsPerm
              << "  failed: " << opt.report.nestsFail << "\n";
    std::cout << "verify failures (rolled back): "
              << opt.report.failVerify << "\n";

    // Confirm the decisions in the cache simulator; this also fills the
    // cachesim.* stats counters so --stats reconciles with the table.
    HitRates rates = simulateHitRates(opt, CacheConfig::i860());
    std::cout << "whole-program hit% (warm, i860): "
              << TextTable::num(rates.wholeOrig, 2) << " -> "
              << TextTable::num(rates.wholeFinal, 2) << "\n";
    return 0;
}

/** Differential fuzzing over the whole pipeline; see
 *  driver/fuzzcheck.hh for the per-round protocol. */
int
cmdFuzz(uint64_t seed, int count)
{
    FuzzReport rep = runFuzzCampaign(seed, count);
    std::cout << "fuzz: " << rep.programs << " programs (seed " << seed
              << ")  validate failures: " << rep.validateFailures
              << "  round-trip failures: " << rep.roundTripFailures
              << "  equivalence failures: " << rep.equivFailures
              << "  guard rollbacks: " << rep.rollbacks << "\n";
    for (const std::string &msg : rep.messages)
        std::cout << "  " << msg << "\n";
    if (!rep.ok()) {
        std::cout << "FUZZING FOUND FAILURES\n";
        return 1;
    }
    std::cout << "all checks passed\n";
    return 0;
}

/** Global flags pulled out of argv before command dispatch. */
struct Options
{
    std::vector<std::string> positional;
    std::string error;         ///< usage error; non-empty = exit 2
    bool help = false;         ///< --help
    std::string traceFile;     ///< --trace=<file.jsonl>
    bool traceText = false;    ///< bare --trace
    bool statsText = false;    ///< --stats
    bool statsJson = false;    ///< --stats=json
    int verbosity = 0;         ///< -v count minus -q count
    bool quiet = false;
    uint64_t fuzzSeed = 1;     ///< fuzz: --seed
    int fuzzCount = 100;       ///< fuzz: --count

    // batch
    bool batchAll = false;        ///< --all
    bool batchStdin = false;      ///< --stdin
    int jobs = 0;                 ///< --jobs (0 = auto)
    int64_t deadlineMs = 0;       ///< --deadline-ms
    int64_t maxIterations = 0;    ///< --max-iterations
    int64_t maxIrNodes = 0;       ///< --max-ir-nodes
    bool jsonOut = false;         ///< --json
    std::string faultSpec;        ///< --fault SPEC
    bool faultSweep = false;      ///< --fault-sweep
    bool listFaults = false;      ///< --list-faults
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;

    // Flags taking a value, as "--flag V" or "--flag=V".
    const std::map<std::string, std::function<void(const std::string &)>>
        valued = {
            {"--seed",
             [&](const std::string &v) {
                 opts.fuzzSeed =
                     static_cast<uint64_t>(std::atoll(v.c_str()));
             }},
            {"--count",
             [&](const std::string &v) {
                 opts.fuzzCount = std::atoi(v.c_str());
             }},
            {"--jobs",
             [&](const std::string &v) {
                 opts.jobs = std::atoi(v.c_str());
             }},
            {"--deadline-ms",
             [&](const std::string &v) {
                 opts.deadlineMs = std::atoll(v.c_str());
             }},
            {"--max-iterations",
             [&](const std::string &v) {
                 opts.maxIterations = std::atoll(v.c_str());
             }},
            {"--max-ir-nodes",
             [&](const std::string &v) {
                 opts.maxIrNodes = std::atoll(v.c_str());
             }},
            {"--fault",
             [&](const std::string &v) { opts.faultSpec = v; }},
        };

    for (int i = 1; i < argc && opts.error.empty(); ++i) {
        std::string arg = argv[i];
        auto eq = arg.find('=');
        std::string head =
            eq == std::string::npos ? arg : arg.substr(0, eq);
        auto valuedIt = valued.find(head);

        if (arg == "--help" || arg == "-h") {
            opts.help = true;
        } else if (arg == "--trace") {
            opts.traceText = true;
        } else if (head == "--trace") {
            opts.traceFile = arg.substr(8);
            if (opts.traceFile.empty())
                opts.error = "--trace= needs a file name";
        } else if (arg == "--stats") {
            opts.statsText = true;
        } else if (arg == "--stats=json") {
            opts.statsJson = true;
        } else if (arg == "--all") {
            opts.batchAll = true;
        } else if (arg == "--stdin") {
            opts.batchStdin = true;
        } else if (arg == "--json") {
            opts.jsonOut = true;
        } else if (arg == "--fault-sweep") {
            opts.faultSweep = true;
        } else if (arg == "--list-faults") {
            opts.listFaults = true;
        } else if (valuedIt != valued.end()) {
            if (eq != std::string::npos) {
                valuedIt->second(arg.substr(eq + 1));
            } else if (i + 1 < argc) {
                valuedIt->second(argv[++i]);
            } else {
                opts.error = arg + " needs a value";
            }
        } else if (arg == "-v") {
            ++opts.verbosity;
        } else if (arg == "-q") {
            opts.quiet = true;
        } else if (!arg.empty() && arg[0] == '-' && arg.size() > 1 &&
                   !isdigit(static_cast<unsigned char>(arg[1]))) {
            opts.error = "unknown flag '" + arg + "'";
        } else {
            opts.positional.push_back(std::move(arg));
        }
    }
    return opts;
}

void
applyVerbosity(const Options &opts)
{
    if (opts.quiet) {
        setLogLevel(LogLevel::Quiet);
        return;
    }
    int level = static_cast<int>(logLevel()) + opts.verbosity;
    level = std::min(level, static_cast<int>(LogLevel::Debug));
    setLogLevel(static_cast<LogLevel>(level));
}

const char *
usageText()
{
    return
        "usage: memoria "
        "<list|print|analyze|optimize|simulate|reuse|trace> "
        "[program] [N] [--trace[=file.jsonl]] [--stats[=json]] "
        "[-v] [-q]\n"
        "       memoria fuzz [--seed N] [--count K]\n"
        "       memoria batch [programs...] [--all] [--stdin] "
        "[--jobs N]\n"
        "               [--deadline-ms N] [--max-iterations N] "
        "[--max-ir-nodes N]\n"
        "               [--json] [--fault SPEC] [--fault-sweep] "
        "[--list-faults]\n"
        "       memoria --help\n"
        "exit codes: 0 ok, 1 pipeline failure, 2 usage error\n";
}

void
printBatchSummary(const harness::BatchReport &rep)
{
    TextTable t({"program", "status", "rung", "attempts", "time ms",
                 "hit% orig->final"});
    for (const harness::ProgramOutcome &p : rep.programs) {
        std::string hit = p.simulated
                              ? TextTable::num(p.hitWarmOrig, 1) +
                                    " -> " +
                                    TextTable::num(p.hitWarmFinal, 1)
                              : "-";
        t.addRow({p.name, harness::batchStatusName(p.status),
                  harness::rungName(p.rung), std::to_string(p.attempts),
                  TextTable::num(p.timeMs, 1), hit});
    }
    std::cout << t.str();
    std::cout << "batch: " << rep.programs.size() << " programs  ok: "
              << rep.countWithStatus(harness::BatchStatus::Ok)
              << "  degraded: "
              << rep.countWithStatus(harness::BatchStatus::Degraded)
              << "  diag: "
              << rep.countWithStatus(harness::BatchStatus::Diag)
              << "  timeout: "
              << rep.countWithStatus(harness::BatchStatus::Timeout)
              << "  panic-contained: "
              << rep.countWithStatus(
                     harness::BatchStatus::PanicContained)
              << "  (" << TextTable::num(rep.totalMs, 0) << " ms)\n";
}

/**
 * Arm every registered fault site in turn against the program that hits
 * it, rerun the batch, and verify the injected failure was contained to
 * exactly that program. Returns 0 when every armed site was contained.
 */
int
runFaultSweep(const std::vector<harness::BatchInput> &inputs,
              const harness::BatchOptions &bopts)
{
    harness::clearFault();
    harness::BatchReport clean = harness::runBatch(inputs, bopts);

    int armed = 0, skipped = 0, failed = 0;
    for (const std::string &site : harness::faultSites()) {
        // Pick the first program (stable input order) that actually
        // reaches this site, so arming it is guaranteed to fire.
        const harness::ProgramOutcome *target = nullptr;
        for (const harness::ProgramOutcome &p : clean.programs) {
            auto hit = p.faultHits.find(site);
            if (hit != p.faultHits.end() && hit->second > 0) {
                target = &p;
                break;
            }
        }
        if (!target) {
            ++skipped;
            std::cout << "sweep: " << site
                      << ": never reached by any input, skipped\n";
            continue;
        }

        harness::FaultSpec spec;
        spec.site = site;
        spec.action = harness::FaultAction::Throw;
        spec.onHit = 1;
        spec.program = target->name;
        harness::armFault(spec);
        harness::BatchReport rep = harness::runBatch(inputs, bopts);
        bool fired = harness::armedFaultFired();
        harness::clearFault();
        ++armed;

        std::string why;
        if (!fired)
            why = "armed fault never fired";
        for (size_t i = 0;
             why.empty() && i < rep.programs.size(); ++i) {
            const harness::ProgramOutcome &p = rep.programs[i];
            const harness::ProgramOutcome &base = clean.programs[i];
            if (p.name == target->name) {
                if (!p.contained())
                    why = "injected fault not contained (status " +
                          std::string(
                              harness::batchStatusName(p.status)) +
                          ")";
            } else if (p.status != base.status || p.rung != base.rung) {
                why = "bystander '" + p.name + "' changed: " +
                      harness::batchStatusName(base.status) + "/" +
                      harness::rungName(base.rung) + " -> " +
                      harness::batchStatusName(p.status) + "/" +
                      harness::rungName(p.rung);
            }
        }

        if (why.empty()) {
            std::cout << "sweep: " << spec.str() << ": contained\n";
        } else {
            ++failed;
            std::cout << "sweep: " << spec.str() << ": FAILED — "
                      << why << "\n";
        }
    }

    std::cout << "sweep: " << armed << " sites armed, " << skipped
              << " skipped, " << failed << " failures\n";
    return failed == 0 ? 0 : 1;
}

int
cmdBatch(const Options &opts)
{
    if (opts.listFaults) {
        for (const std::string &site : harness::faultSites())
            std::cout << site
                      << (harness::faultSiteSupportsDiag(site)
                              ? " (diag)"
                              : "")
                      << "\n";
        return 0;
    }

    harness::BatchOptions bopts;
    bopts.budget.deadlineMs = std::max<int64_t>(opts.deadlineMs, 0);
    bopts.budget.maxInterpIterations =
        opts.maxIterations > 0
            ? static_cast<uint64_t>(opts.maxIterations)
            : 0;
    bopts.budget.maxIrNodes =
        opts.maxIrNodes > 0 ? static_cast<uint64_t>(opts.maxIrNodes)
                            : 0;
    bopts.jobs =
        opts.jobs > 0
            ? opts.jobs
            : std::clamp<int>(
                  static_cast<int>(std::thread::hardware_concurrency()),
                  1, 4);

    std::vector<harness::BatchInput> inputs;
    if (opts.batchAll) {
        inputs = harness::kernelInputs();
        for (harness::BatchInput &in : harness::corpusInputs())
            inputs.push_back(std::move(in));
        for (harness::BatchInput &in :
             harness::directoryInputs("examples"))
            inputs.push_back(std::move(in));
    }
    if (opts.batchStdin) {
        std::string line;
        while (std::getline(std::cin, line)) {
            while (!line.empty() &&
                   isspace(static_cast<unsigned char>(line.back())))
                line.pop_back();
            if (!line.empty() && line[0] != '#')
                inputs.push_back(resolveBatchInput(line));
        }
    }
    for (size_t i = 1; i < opts.positional.size(); ++i)
        inputs.push_back(resolveBatchInput(opts.positional[i]));

    if (inputs.empty()) {
        std::cerr << "memoria batch: no inputs; use --all, --stdin, "
                     "or program names\n";
        return 2;
    }

    if (opts.faultSweep)
        return runFaultSweep(inputs, bopts);

    if (!opts.faultSpec.empty()) {
        Result<harness::FaultSpec> spec =
            harness::parseFaultSpec(opts.faultSpec);
        if (!spec.ok()) {
            std::cerr << "memoria batch: " << spec.diag().str() << "\n";
            return 2;
        }
        harness::armFault(spec.value());
    }

    harness::BatchReport rep = harness::runBatch(inputs, bopts);
    harness::clearFault();

    if (opts.jsonOut)
        std::cout << rep.toJson() << "\n";
    else
        printBatchSummary(rep);

    // Containment is the contract: per-program failures are reported,
    // not escalated to the exit code.
    return 0;
}

int
run(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    if (!opts.error.empty()) {
        std::cerr << "memoria: " << opts.error << "\n" << usageText();
        return 2;
    }
    applyVerbosity(opts);

    if (opts.help) {
        std::cout << usageText();
        return 0;
    }
    if (opts.positional.empty()) {
        std::cerr << usageText();
        return 2;
    }

    if (!opts.traceFile.empty())
        obs::setTraceSink(
            std::make_unique<obs::JsonLinesSink>(opts.traceFile));
    else if (opts.traceText)
        obs::setTraceSink(std::make_unique<obs::TextSink>(std::cerr));

    const std::string &cmd = opts.positional[0];
    int rc = 2;
    if (cmd == "list") {
        rc = cmdList();
    } else if (cmd == "batch") {
        rc = cmdBatch(opts);
    } else if (cmd == "fuzz") {
        if (opts.fuzzCount <= 0) {
            std::cerr << "memoria: --count must be positive\n";
            rc = 2;
        } else {
            rc = cmdFuzz(opts.fuzzSeed, opts.fuzzCount);
        }
    } else if (opts.positional.size() < 2) {
        std::cerr << "missing program name; try `memoria list`\n";
    } else {
        int64_t n = opts.positional.size() > 2
                        ? std::atoll(opts.positional[2].c_str())
                        : 48;
        Result<Program> resolved = resolve(opts.positional[1], n);
        if (!resolved.ok()) {
            std::cerr << "memoria: " << resolved.diag().str() << "\n";
            rc = 1;
        } else {
            Program prog = std::move(resolved.value());
            if (cmd == "print") {
                std::cout << printProgram(prog);
                rc = 0;
            } else if (cmd == "analyze") {
                rc = cmdAnalyze(std::move(prog));
            } else if (cmd == "optimize") {
                rc = cmdOptimize(std::move(prog));
            } else if (cmd == "simulate") {
                rc = cmdSimulate(std::move(prog));
            } else if (cmd == "reuse") {
                rc = cmdReuse(std::move(prog));
            } else if (cmd == "trace") {
                rc = cmdTrace(std::move(prog));
            } else {
                std::cerr << "unknown command '" << cmd << "'\n";
            }
        }
    }

    if (opts.statsJson)
        obs::statsRegistry().dumpJson(std::cout);
    else if (opts.statsText)
        obs::statsRegistry().dumpText(std::cout);

    obs::setTraceSink(nullptr);  // flush and close any trace file
    return rc;
}

} // namespace
} // namespace memoria

int
main(int argc, char **argv)
{
    return memoria::run(argc, argv);
}
