/**
 * @file
 * memoria — command-line driver.
 *
 * Runs the pipeline on the built-in kernels and corpus programs:
 *
 *   memoria list
 *   memoria print <program> [N]
 *   memoria analyze <program> [N]      LoopCost table + memory order
 *   memoria optimize <program> [N]     Compound + before/after source
 *   memoria simulate <program> [N]     hit rates + speedup on both caches
 *   memoria reuse <program> [N]        reuse-distance profile
 *
 * <program> is a kernel name (matmul-ijk, matmul-jki, cholesky, adi,
 * erlebacher, gmtry, simple, vpenta, jacobi), a corpus program name
 * (adm, arc2d, ..., wave), or a path to a source file written in the
 * loop-nest language (see src/frontend/parser.hh and examples/stencil.mem).
 */

#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>
#include <string>

#include <fstream>
#include <sstream>

#include "cachesim/reuse.hh"
#include "frontend/parser.hh"
#include "support/logging.hh"
#include "driver/memoria.hh"
#include "ir/printer.hh"
#include "model/loopcost.hh"
#include "suite/corpus.hh"
#include "suite/kernels.hh"
#include "support/table.hh"

namespace memoria {
namespace {

using Maker = std::function<Program(int64_t)>;

const std::map<std::string, Maker> &
kernels()
{
    static const std::map<std::string, Maker> table = {
        {"matmul-ijk", [](int64_t n) { return makeMatmul("IJK", n); }},
        {"matmul-ikj", [](int64_t n) { return makeMatmul("IKJ", n); }},
        {"matmul-jki", [](int64_t n) { return makeMatmul("JKI", n); }},
        {"cholesky", [](int64_t n) { return makeCholeskyKIJ(n); }},
        {"adi", [](int64_t n) { return makeAdiScalarized(n); }},
        {"erlebacher",
         [](int64_t n) { return makeErlebacherDistributed(n); }},
        {"gmtry", [](int64_t n) { return makeGmtry(n); }},
        {"simple", [](int64_t n) { return makeSimpleHydro(n); }},
        {"vpenta", [](int64_t n) { return makeVpenta(n); }},
        {"jacobi", [](int64_t n) { return makeJacobiBadOrder(n); }},
    };
    return table;
}

Program
resolve(const std::string &name, int64_t n)
{
    auto it = kernels().find(name);
    if (it != kernels().end())
        return it->second(n);
    for (const auto &spec : corpusSpecs())
        if (spec.name == name)
            return buildCorpusProgram(spec, std::max<int64_t>(n, 8));

    // Otherwise treat the name as a source file in the loop-nest
    // language (see src/frontend/parser.hh).
    std::ifstream in(name);
    if (in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        ParseError err;
        auto p = parseProgram(buf.str(), &err);
        if (!p) {
            fatal(name + ":" + std::to_string(err.line) + ": " +
                  err.message);
        }
        return std::move(*p);
    }
    fatal("unknown program or file '" + name +
          "'; try `memoria list`");
}

int
cmdList()
{
    std::cout << "kernels:\n";
    for (const auto &[name, mk] : kernels())
        std::cout << "  " << name << "\n";
    std::cout << "corpus programs:\n ";
    for (const auto &spec : corpusSpecs())
        std::cout << " " << spec.name;
    std::cout << "\n";
    return 0;
}

int
cmdAnalyze(Program prog)
{
    ModelParams params;
    std::cout << printProgram(prog) << "\n";
    int nest = 0;
    for (auto &top : prog.body) {
        if (!top->isLoop() || loopDepth(*top) < 2)
            continue;
        NestAnalysis na(prog, top.get(), params);
        std::cout << "nest " << nest++ << ": LoopCost per candidate\n";
        for (Node *l : na.loops()) {
            std::cout << "  " << prog.varName(l->var) << ": "
                      << na.loopCost(l).str() << "\n";
        }
        std::cout << "  memory order: ";
        for (Node *l : na.memoryOrder())
            std::cout << prog.varName(l->var);
        std::cout << (nestInMemoryOrder(na) ? " (already)" : "")
                  << "\n";
    }
    return 0;
}

int
cmdOptimize(Program prog)
{
    ModelParams params;
    OptimizedProgram opt = optimizeProgram(prog, params);
    std::cout << "--- original ---\n" << printProgram(opt.original)
              << "\n--- transformed ---\n"
              << printProgram(opt.transformed);
    std::cout << "nests: " << opt.report.nests
              << "  in memory order: " << opt.report.nestsOrig << "+"
              << opt.report.nestsPerm << "  failed: "
              << opt.report.nestsFail
              << "  fused: " << opt.report.fusion.fused
              << "  distributed: " << opt.report.distributions << "\n";
    std::cout << "semantics preserved: "
              << (runChecksum(opt.original) ==
                          runChecksum(opt.transformed)
                      ? "yes"
                      : "NO")
              << "\n";
    return 0;
}

int
cmdSimulate(Program prog)
{
    ModelParams params;
    OptimizedProgram opt = optimizeProgram(prog, params);
    TextTable t({"cache", "whole orig hit%", "whole final hit%",
                 "speedup"});
    for (const CacheConfig &cfg :
         {CacheConfig::rs6000(), CacheConfig::i860()}) {
        HitRates r = simulateHitRates(opt, cfg);
        Performance perf = simulatePerformance(opt, cfg);
        t.addRow({cfg.name, TextTable::num(r.wholeOrig, 2),
                  TextTable::num(r.wholeFinal, 2),
                  TextTable::num(perf.speedup(), 2)});
    }
    std::cout << t.str();
    return 0;
}

int
cmdReuse(Program prog)
{
    ModelParams params;
    OptimizedProgram opt = optimizeProgram(prog, params);
    auto profile = [](Program &p) {
        ReuseDistanceAnalyzer rd(32);
        Interpreter interp(p);
        interp.run(&rd);
        return rd;
    };
    ReuseDistanceAnalyzer r0 = profile(opt.original);
    ReuseDistanceAnalyzer r1 = profile(opt.transformed);
    std::cout << "mean reuse distance: "
              << TextTable::num(r0.meanDistance(), 1) << " -> "
              << TextTable::num(r1.meanDistance(), 1) << " lines\n";
    TextTable t({"capacity (lines)", "orig miss%", "final miss%"});
    for (uint64_t cap : {16, 64, 256, 1024}) {
        t.addRow({std::to_string(cap),
                  TextTable::num(100.0 * r0.missRatio(cap), 1),
                  TextTable::num(100.0 * r1.missRatio(cap), 1)});
    }
    std::cout << t.str();
    return 0;
}

int
run(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: memoria "
                     "<list|print|analyze|optimize|simulate|reuse> "
                     "[program] [N]\n";
        return 2;
    }
    std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList();
    if (argc < 3) {
        std::cerr << "missing program name; try `memoria list`\n";
        return 2;
    }
    int64_t n = argc > 3 ? std::atoll(argv[3]) : 48;
    Program prog = resolve(argv[2], n);

    if (cmd == "print") {
        std::cout << printProgram(prog);
        return 0;
    }
    if (cmd == "analyze")
        return cmdAnalyze(std::move(prog));
    if (cmd == "optimize")
        return cmdOptimize(std::move(prog));
    if (cmd == "simulate")
        return cmdSimulate(std::move(prog));
    if (cmd == "reuse")
        return cmdReuse(std::move(prog));
    std::cerr << "unknown command '" << cmd << "'\n";
    return 2;
}

} // namespace
} // namespace memoria

int
main(int argc, char **argv)
{
    return memoria::run(argc, argv);
}
